#include "cache/tag_array.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace sttgpu::cache {
namespace {

class TagArrayTest : public ::testing::Test {
 protected:
  CacheGeometry geom_{8 * 1024, 4, 256};  // 8 sets x 4 ways
  TagArray tags_{geom_, ReplacementKind::kLru};
};

TEST_F(TagArrayTest, EmptyArrayMissesEverything) {
  EXPECT_FALSE(tags_.probe(0x1000).has_value());
  EXPECT_EQ(tags_.valid_count(), 0u);
}

TEST_F(TagArrayTest, FillThenProbeHits) {
  const Addr addr = 0x4200;
  const unsigned way = tags_.pick_victim(addr);
  const LineMeta& line = tags_.fill(addr, way, 10);
  EXPECT_TRUE(tags_.valid(geom_.set_index(addr), way));
  EXPECT_EQ(line.insert_cycle, 10u);
  const auto hit = tags_.probe(addr);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, way);
  // Another address in the same line also hits.
  EXPECT_TRUE(tags_.probe(addr + 255).has_value());
  // The next line does not.
  EXPECT_FALSE(tags_.probe(addr + 256).has_value());
}

TEST_F(TagArrayTest, InvalidateRemoves) {
  const Addr addr = 0x8000;
  const unsigned way = tags_.pick_victim(addr);
  tags_.fill(addr, way, 0);
  EXPECT_TRUE(tags_.probe(addr).has_value());
  tags_.invalidate(addr, way);
  EXPECT_FALSE(tags_.probe(addr).has_value());
  EXPECT_EQ(tags_.valid_count(), 0u);
}

TEST_F(TagArrayTest, FillResetsMetadata) {
  const Addr addr = 0x100;
  const unsigned way = tags_.pick_victim(addr);
  LineMeta& line = tags_.fill(addr, way, 5);
  line.dirty = true;
  line.write_count = 7;
  tags_.fill(addr, way, 9);  // refill same slot
  const LineMeta& fresh = tags_.line(geom_.set_index(addr), way);
  EXPECT_FALSE(fresh.dirty);
  EXPECT_EQ(fresh.write_count, 0u);
  EXPECT_EQ(fresh.last_write_cycle, kNoCycle);
  EXPECT_EQ(fresh.retention_deadline, kNoCycle);
}

TEST_F(TagArrayTest, VictimPrefersInvalidThenLru) {
  // Fill all four ways of one set with same-set addresses.
  const Addr base = 0x0;
  const std::uint64_t set_stride = geom_.num_sets() * geom_.line_bytes();
  std::vector<Addr> addrs;
  for (unsigned i = 0; i < 4; ++i) addrs.push_back(base + i * set_stride);
  for (const Addr a : addrs) tags_.fill(a, tags_.pick_victim(a), 0);
  EXPECT_EQ(tags_.valid_count(), 4u);

  // Touch all but the first: the first becomes LRU.
  for (unsigned i = 1; i < 4; ++i) tags_.touch(addrs[i], *tags_.probe(addrs[i]));
  const unsigned victim = tags_.pick_victim(base + 4 * set_stride);
  EXPECT_EQ(victim, *tags_.probe(addrs[0]));
}

TEST_F(TagArrayTest, ForEachValidVisitsExactlyValidLines) {
  for (int i = 0; i < 10; ++i) {
    const Addr a = static_cast<Addr>(i) * 256;
    tags_.fill(a, tags_.pick_victim(a), 0);
  }
  std::size_t visited = 0;
  tags_.for_each_valid([&](std::uint64_t set, unsigned way, LineMeta&) {
    EXPECT_TRUE(tags_.valid(set, way));
    ++visited;
  });
  EXPECT_EQ(visited, tags_.valid_count());
  EXPECT_EQ(visited, 10u);
}

TEST_F(TagArrayTest, ValidMaskTracksState) {
  const Addr addr = 0x2000;
  const std::uint64_t set = geom_.set_index(addr);
  auto mask = tags_.valid_mask(set);
  EXPECT_EQ(std::count(mask.begin(), mask.end(), true), 0);
  tags_.fill(addr, 2, 0);
  mask = tags_.valid_mask(set);
  EXPECT_TRUE(mask[2]);
  EXPECT_EQ(std::count(mask.begin(), mask.end(), true), 1);
  // The borrowed packed view agrees with the materialised mask.
  const ValidBits bits = tags_.valid_bits(set);
  ASSERT_EQ(bits.ways, geom_.associativity());
  for (unsigned w = 0; w < bits.ways; ++w) EXPECT_EQ(bits.test(w), mask[w]);
}

TEST(TagArrayStress, RandomTrafficNeverAliases) {
  // Property: after any traffic, a probe hit implies matching line address.
  CacheGeometry geom(16 * 1024, 4, 128);
  TagArray tags(geom, ReplacementKind::kLru);
  Rng rng(3);
  std::vector<Addr> live;
  for (int i = 0; i < 5000; ++i) {
    const Addr a = rng.next_below(1 << 18) & ~Addr{127};
    if (const auto way = tags.probe(a)) {
      EXPECT_EQ(tags.tag(geom.set_index(a), *way), geom.tag_of(a));
      tags.touch(a, *way);
    } else {
      tags.fill(a, tags.pick_victim(a), i);
    }
  }
  EXPECT_LE(tags.valid_count(), geom.num_lines());
}

}  // namespace
}  // namespace sttgpu::cache
