#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace sttgpu {
namespace {

TEST(TextTable, RejectsEmptyHeaders) { EXPECT_THROW(TextTable({}), SimError); }

TEST(TextTable, RejectsArityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), SimError);
}

TEST(TextTable, PrintsAlignedGrid) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| longer-name"), std::string::npos);
  // All lines have equal length (aligned columns).
  std::istringstream is(out);
  std::string line;
  std::size_t len = 0;
  while (std::getline(is, line)) {
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len);
  }
}

TEST(TextTable, CsvOutput) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TextTable, FormatHelpers) {
  EXPECT_EQ(TextTable::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::fmt(2.0, 0), "2");
  EXPECT_EQ(TextTable::fmt_percent(0.1234, 1), "12.3%");
}

TEST(TextTable, RowCount) {
  TextTable t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"x"});
  EXPECT_EQ(t.row_count(), 1u);
}

}  // namespace
}  // namespace sttgpu
