#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace sttgpu {
namespace {

TEST(StreamStats, Empty) {
  StreamStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.cov(), 0.0);
}

TEST(StreamStats, KnownValues) {
  StreamStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);  // population stddev
  EXPECT_NEAR(s.cov(), 0.4, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(StreamStats, ConstantSeriesHasZeroCov) {
  StreamStats s;
  for (int i = 0; i < 100; ++i) s.add(3.0);
  EXPECT_NEAR(s.cov(), 0.0, 1e-12);
}

TEST(Histogram, RejectsBadEdges) {
  EXPECT_THROW(Histogram({}), SimError);
  EXPECT_THROW(Histogram({1.0, 1.0}), SimError);
  EXPECT_THROW(Histogram({2.0, 1.0}), SimError);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h({10.0, 100.0});
  h.add(5.0);
  h.add(10.0);   // on the edge => first bucket (<= edge)
  h.add(50.0);
  h.add(1000.0);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(1), 0.75);
}

TEST(Histogram, WeightedAddAndReset) {
  Histogram h({1.0});
  h.add(0.5, 10);
  EXPECT_EQ(h.total(), 10u);
  h.reset();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.bucket(0), 0u);
}

TEST(Cov, UniformCountsZero) {
  EXPECT_DOUBLE_EQ(coefficient_of_variation({5, 5, 5, 5}), 0.0);
}

TEST(Cov, SingleHotSpotHigh) {
  // One hot element among zeros: COV = sqrt(n-1).
  const double cov = coefficient_of_variation({100, 0, 0, 0});
  EXPECT_NEAR(cov, std::sqrt(3.0), 1e-9);
}

TEST(Cov, EmptyAndAllZero) {
  EXPECT_DOUBLE_EQ(coefficient_of_variation({}), 0.0);
  EXPECT_DOUBLE_EQ(coefficient_of_variation({0, 0, 0}), 0.0);
}

TEST(GeometricMean, Basics) {
  EXPECT_DOUBLE_EQ(geometric_mean({}), 0.0);
  EXPECT_DOUBLE_EQ(geometric_mean({4.0}), 4.0);
  EXPECT_NEAR(geometric_mean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geometric_mean({2.0, 2.0, 2.0}), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(geometric_mean({1.0, 0.0}), 0.0);  // non-positive => 0
}

TEST(CounterSet, GetAndMerge) {
  CounterSet a, b;
  a.at(a.intern("x")) = 3;
  b.at(b.intern("x")) = 4;
  b.at(b.intern("y")) = 1;
  a.merge(b);
  EXPECT_EQ(a.get("x"), 7u);
  EXPECT_EQ(a.get("y"), 1u);
  EXPECT_EQ(a.get("missing"), 0u);
}

TEST(CounterSet, InternedHandlesAliasStringKeys) {
  CounterSet c;
  const CounterId id = c.intern("hits");
  EXPECT_EQ(c.intern("hits"), id);  // idempotent
  c.at(id) += 5;
  c.at(c.intern("hits")) += 2;  // re-interning yields the same slot
  EXPECT_EQ(c.get("hits"), 7u);
  EXPECT_EQ(c.at(id), 7u);
  // Interning alone creates the counter at zero (visible in all()).
  const CounterId other = c.intern("misses");
  EXPECT_EQ(c.at(other), 0u);
  const auto all = c.all();
  EXPECT_EQ(all.size(), 2u);
  EXPECT_EQ(all.at("misses"), 0u);
}

TEST(Histogram, CumulativeFractionTracksLaterAdds) {
  // The prefix sums are cached; adding afterwards must invalidate the cache.
  Histogram h({10, 20});
  h.add(5);
  h.add(5);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(0), 1.0);
  h.add(15);
  h.add(25);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(1), 0.75);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(2), 1.0);
  h.reset();
  h.add(25);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(0), 0.0);
  EXPECT_DOUBLE_EQ(h.cumulative_fraction(2), 1.0);
}

}  // namespace
}  // namespace sttgpu
