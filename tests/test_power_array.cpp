#include "power/array_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace sttgpu::power {
namespace {

ArraySpec sram_spec(std::uint64_t bytes, unsigned assoc = 8, unsigned line = 256) {
  ArraySpec s;
  s.capacity_bytes = bytes;
  s.associativity = assoc;
  s.line_bytes = line;
  s.data_cell = nvm::sram_cell();
  return s;
}

TEST(ArrayModel, RejectsBadGeometry) {
  EXPECT_THROW(evaluate_array(sram_spec(0)), SimError);
  EXPECT_THROW(evaluate_array(sram_spec(64 * 1024, 8, 100)), SimError);  // non-pow2 line
  ArraySpec s = sram_spec(64 * 1024, 7);
  EXPECT_THROW(evaluate_array(s), SimError);  // 256 lines not divisible by 7
}

TEST(ArrayModel, GeometryDerivation) {
  const ArrayCosts c = evaluate_array(sram_spec(64 * 1024, 8, 256));
  EXPECT_EQ(c.sets, 32u);
  // tag bits = 40 - log2(32 sets) - log2(256B) + 8 state = 40 - 5 - 8 + 8 = 35
  EXPECT_EQ(c.tag_bits_per_line, 35u);
}

TEST(ArrayModel, ExtraTagBitsCounted) {
  ArraySpec s = sram_spec(64 * 1024);
  const unsigned base = evaluate_array(s).tag_bits_per_line;
  s.extra_tag_bits_per_line = 4;
  EXPECT_EQ(evaluate_array(s).tag_bits_per_line, base + 4);
}

TEST(ArrayModel, AreaScalesWithCapacity) {
  const ArrayCosts small = evaluate_array(sram_spec(64 * 1024));
  const ArrayCosts big = evaluate_array(sram_spec(256 * 1024));
  EXPECT_NEAR(big.data_area_mm2 / small.data_area_mm2, 4.0, 1e-6);
  EXPECT_GT(big.tag_area_mm2, small.tag_area_mm2);
}

TEST(ArrayModel, SttQuartersDataArea) {
  ArraySpec stt = sram_spec(64 * 1024);
  stt.data_cell = nvm::stt_cell(nvm::RetentionClass::kYears10);
  const ArrayCosts s = evaluate_array(sram_spec(64 * 1024));
  const ArrayCosts t = evaluate_array(stt);
  EXPECT_NEAR(s.data_area_mm2 / t.data_area_mm2, 4.0, 1e-9);
  // Tags stay SRAM: same tag area.
  EXPECT_NEAR(s.tag_area_mm2, t.tag_area_mm2, 1e-12);
}

TEST(ArrayModel, EnergyAndLatencyGrowWithCapacity) {
  const ArrayCosts small = evaluate_array(sram_spec(32 * 1024));
  const ArrayCosts big = evaluate_array(sram_spec(512 * 1024));
  EXPECT_GT(big.data_read_pj, small.data_read_pj);
  EXPECT_GT(big.data_read_latency_ns, small.data_read_latency_ns);
  EXPECT_GT(big.leakage_w, small.leakage_w);
}

TEST(ArrayModel, SramLeakageDominatesSttLeakage) {
  ArraySpec stt = sram_spec(256 * 1024);
  stt.data_cell = nvm::stt_cell(nvm::RetentionClass::kMs40);
  const Watt sram_leak = evaluate_array(sram_spec(256 * 1024)).leakage_w;
  const Watt stt_leak = evaluate_array(stt).leakage_w;
  EXPECT_GT(sram_leak, 5.0 * stt_leak);
}

TEST(ArrayModel, SttWriteCostlierThanRead) {
  ArraySpec stt = sram_spec(64 * 1024);
  stt.data_cell = nvm::stt_cell(nvm::RetentionClass::kMs40);
  const ArrayCosts c = evaluate_array(stt);
  EXPECT_GT(c.data_write_pj, c.data_read_pj);
  EXPECT_GT(c.data_write_latency_ns, c.data_read_latency_ns);
}

TEST(ArrayModel, TagProbeScalesWithAssociativity) {
  const ArrayCosts a2 = evaluate_array(sram_spec(64 * 1024, 2));
  const ArrayCosts a8 = evaluate_array(sram_spec(64 * 1024, 8));
  EXPECT_GT(a8.tag_probe_pj, a2.tag_probe_pj);
}

TEST(RegisterFileArea, RoundTripConversion) {
  for (const std::uint64_t regs : {1024ull, 32768ull, 100000ull}) {
    const MilliMeter2 area = register_file_area_mm2(regs);
    const std::uint64_t back = registers_for_area(area);
    EXPECT_LE(back, regs);
    EXPECT_GE(back, regs - 1);  // floor rounding only
  }
  EXPECT_EQ(registers_for_area(0.0), 0u);
  EXPECT_EQ(registers_for_area(-1.0), 0u);
}

// Parameterized sweep: the fully-associative degenerate case and various
// set-associative shapes all produce self-consistent costs.
class ArrayShapes : public ::testing::TestWithParam<std::pair<std::uint64_t, unsigned>> {};

TEST_P(ArrayShapes, SelfConsistent) {
  const auto [bytes, assoc] = GetParam();
  const ArrayCosts c = evaluate_array(sram_spec(bytes, assoc));
  EXPECT_EQ(c.sets * assoc, bytes / 256);
  EXPECT_GT(c.total_area_mm2, 0.0);
  EXPECT_GT(c.tag_probe_pj, 0.0);
  EXPECT_GT(c.data_write_pj, 0.0);
  EXPECT_GT(c.leakage_w, 0.0);
  EXPECT_GE(c.total_area_mm2, c.data_area_mm2);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ArrayShapes,
    ::testing::Values(std::pair<std::uint64_t, unsigned>{8 * 1024, 2},
                      std::pair<std::uint64_t, unsigned>{32 * 1024, 2},
                      std::pair<std::uint64_t, unsigned>{56 * 1024, 7},
                      std::pair<std::uint64_t, unsigned>{64 * 1024, 8},
                      std::pair<std::uint64_t, unsigned>{224 * 1024, 7},
                      std::pair<std::uint64_t, unsigned>{8 * 1024, 32}));

}  // namespace
}  // namespace sttgpu::power
