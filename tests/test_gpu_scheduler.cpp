// Scheduler-policy and DRAM page-policy tests (configuration extensions of
// the GPU substrate).
#include <gtest/gtest.h>

#include "gpu/dram.hpp"
#include "gpu/gpu.hpp"
#include "sttl2/factories.hpp"

namespace sttgpu::gpu {
namespace {

workload::Workload workload_of(workload::PatternKind kind, double mem_fraction) {
  workload::KernelSpec k;
  k.name = "sched";
  k.grid_blocks = 24;
  k.threads_per_block = 64;
  k.regs_per_thread = 16;
  k.instructions_per_warp = 400;
  k.mem_fraction = mem_fraction;
  k.store_fraction = 0.2;
  k.pattern.kind = kind;
  k.pattern.footprint_bytes = 2 << 20;
  k.pattern.reuse_fraction = 0.2;
  k.pattern.wws_lines = 32;
  return {.name = "sched", .region = "test", .kernels = {k}, .seed = 11};
}

RunResult run_with(const GpuConfig& cfg, const workload::Workload& w) {
  sttl2::UniformBankConfig bank;
  bank.capacity_bytes = 64 * 1024;
  sttl2::UniformBankFactory factory(bank, cfg.clock());
  Gpu gpu(cfg, factory);
  return gpu.run(w);
}

GpuConfig small_config(SchedulerKind sched) {
  GpuConfig cfg;
  cfg.num_sms = 4;
  cfg.num_l2_banks = 2;
  cfg.scheduler = sched;
  return cfg;
}

TEST(Scheduler, BothPoliciesCompleteTheSameWork) {
  const workload::Workload w = workload_of(workload::PatternKind::kStreaming, 0.3);
  const RunResult gto = run_with(small_config(SchedulerKind::kGto), w);
  const RunResult lrr = run_with(small_config(SchedulerKind::kLrr), w);
  EXPECT_EQ(gto.instructions, w.total_instructions());
  EXPECT_EQ(lrr.instructions, w.total_instructions());
  EXPECT_GT(gto.ipc, 0.0);
  EXPECT_GT(lrr.ipc, 0.0);
}

TEST(Scheduler, PoliciesProduceDifferentSchedules) {
  const workload::Workload w = workload_of(workload::PatternKind::kRandom, 0.35);
  const RunResult gto = run_with(small_config(SchedulerKind::kGto), w);
  const RunResult lrr = run_with(small_config(SchedulerKind::kLrr), w);
  // Same work, different interleavings => different cycle counts.
  EXPECT_NE(gto.cycles, lrr.cycles);
}

TEST(Scheduler, EachPolicyIsDeterministic) {
  const workload::Workload w = workload_of(workload::PatternKind::kRandom, 0.35);
  for (const auto sched : {SchedulerKind::kGto, SchedulerKind::kLrr}) {
    const RunResult a = run_with(small_config(sched), w);
    const RunResult b = run_with(small_config(sched), w);
    EXPECT_EQ(a.cycles, b.cycles);
  }
}

TEST(DramPagePolicy, OpenPageHitsOnSequentialTraffic) {
  GpuConfig cfg;
  cfg.dram_open_page = true;
  std::uint64_t done = 0;
  DramChannel dram(cfg, [&](std::uint64_t, Cycle) { ++done; });
  // Sequential 256B lines within one 2KB row: 1 miss + 7 hits per row.
  for (Addr a = 0; a < 4096; a += 256) dram.read(a, a, 0);
  for (Cycle c = 0; c < 5000; c += 13) dram.tick(c);
  EXPECT_EQ(done, 16u);
  EXPECT_EQ(dram.row_misses(), 2u);
  EXPECT_EQ(dram.row_hits(), 14u);
}

TEST(DramPagePolicy, ClosedPageNeverCountsHits) {
  GpuConfig cfg;  // open-page off by default
  DramChannel dram(cfg, [](std::uint64_t, Cycle) {});
  for (Addr a = 0; a < 2048; a += 256) dram.read(a, a, 0);
  EXPECT_EQ(dram.row_hits(), 0u);
  EXPECT_EQ(dram.row_misses(), 0u);
}

TEST(DramPagePolicy, RowHitsAreFaster) {
  GpuConfig cfg;
  cfg.dram_open_page = true;
  cfg.dram_latency = 220;
  cfg.dram_row_hit_latency = 140;
  cfg.dram_service_gap = 1;
  std::vector<std::pair<std::uint64_t, Cycle>> done;
  DramChannel dram(cfg, [&](std::uint64_t cookie, Cycle now) { done.emplace_back(cookie, now); });
  dram.read(0, 0, 0);      // row miss
  dram.read(256, 1, 0);    // row hit
  for (Cycle c = 0; c <= 400; ++c) dram.tick(c);
  ASSERT_EQ(done.size(), 2u);
  // The hit (cookie 1) completes before the miss despite being issued later.
  EXPECT_EQ(done[0].first, 1u);
  EXPECT_LT(done[0].second, done[1].second);
}

TEST(DramPagePolicy, OpenPageHelpsStreamingWorkloads) {
  const workload::Workload w = workload_of(workload::PatternKind::kStreaming, 0.4);
  GpuConfig closed = small_config(SchedulerKind::kGto);
  GpuConfig open = small_config(SchedulerKind::kGto);
  open.dram_open_page = true;
  const RunResult r_closed = run_with(closed, w);
  const RunResult r_open = run_with(open, w);
  EXPECT_GE(r_open.ipc, r_closed.ipc);
}

}  // namespace
}  // namespace sttgpu::gpu
