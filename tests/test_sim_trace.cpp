#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace sttgpu::sim {
namespace {

constexpr const char* kPath = "test_trace.csv";

struct TraceCleanup {
  ~TraceCleanup() { std::remove(kPath); }
} cleanup_guard;

TEST(Trace, SaveLoadRoundTrip) {
  const std::vector<TraceRecord> records = {
      {10, 0, 0x1000, false, 2},
      {11, 1, 0x2000, true, 3},
      {400, 0, 0x1000, true, 2},
  };
  save_trace(kPath, records);
  const auto loaded = load_trace(kPath);
  ASSERT_EQ(loaded.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(loaded[i].cycle, records[i].cycle);
    EXPECT_EQ(loaded[i].bank, records[i].bank);
    EXPECT_EQ(loaded[i].addr, records[i].addr);
    EXPECT_EQ(loaded[i].is_store, records[i].is_store);
    EXPECT_EQ(loaded[i].sm, records[i].sm);
  }
  std::remove(kPath);
}

TEST(Trace, LoadRejectsGarbage) {
  EXPECT_THROW(load_trace("nonexistent_trace.csv"), SimError);
  {
    std::ofstream out(kPath);
    out << "not,a,trace,header,x\n";
  }
  EXPECT_THROW(load_trace(kPath), SimError);
  std::remove(kPath);
}

TEST(Trace, RecordingMatchesTheRunDemand) {
  const ArchSpec spec = make_arch(Architecture::kSramBaseline);
  const workload::Workload w = workload::make_benchmark("hotspot", 0.04);
  const Metrics m = record_trace(spec, w, kPath);
  EXPECT_GT(m.ipc, 0.0);

  const auto records = load_trace(kPath);
  EXPECT_GT(records.size(), 100u);
  // The trace is exactly the recorded L2 demand of an identical plain run.
  gpu::RunResult run;
  (void)run_one_detailed(spec, w, run);
  EXPECT_EQ(records.size(), run.l2.accesses());
  std::remove(kPath);
}

TEST(Trace, ReplayReproducesHitStatistics) {
  const ArchSpec spec = make_arch(Architecture::kSramBaseline);
  const workload::Workload w = workload::make_benchmark("hotspot", 0.04);
  (void)record_trace(spec, w, kPath);
  const auto records = load_trace(kPath);

  gpu::RunResult run;
  (void)run_one_detailed(spec, w, run);

  const ReplayResult replay = replay_trace(records, spec.uniform, spec.gpu);
  // Replay is open-loop (no SM feedback), but arrival cycles are preserved,
  // so the functional hit/miss statistics match the live run exactly.
  EXPECT_EQ(replay.stats.accesses(), run.l2.accesses());
  EXPECT_EQ(replay.stats.writes(), run.l2.writes());
  EXPECT_EQ(replay.stats.read_hits, run.l2.read_hits);
  EXPECT_EQ(replay.stats.read_misses, run.l2.read_misses);
  std::remove(kPath);
}

TEST(Trace, ReplayEnablesCheapArchitectureSweeps) {
  // Record once on the SRAM baseline, then evaluate a two-part design from
  // the trace alone.
  const ArchSpec sram = make_arch(Architecture::kSramBaseline);
  const workload::Workload w = workload::make_benchmark("kmeans", 0.04);
  (void)record_trace(sram, w, kPath);
  const auto records = load_trace(kPath);

  const ArchSpec c1 = make_arch(Architecture::kC1);
  const ReplayResult replay = replay_trace(records, c1.two_part_cfg, c1.gpu);
  EXPECT_EQ(replay.stats.accesses(), records.size());
  EXPECT_GT(replay.counters.get("w_demand"), 0u);
  EXPECT_GT(replay.dynamic_energy_pj, 0.0);
  // The bigger two-part cache misses less than the trace's source cache.
  const ReplayResult base = replay_trace(records, sram.uniform, sram.gpu);
  EXPECT_LT(replay.stats.miss_rate(), base.stats.miss_rate());
  std::remove(kPath);
}

}  // namespace
}  // namespace sttgpu::sim
