#include "sim/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace sttgpu::sim {
namespace {

Metrics sample_metrics() {
  Metrics m;
  m.arch = "C1";
  m.benchmark = "bfs";
  m.ipc = 2.5;
  m.cycles = 1000;
  m.dynamic_w = 0.4;
  m.leakage_w = 0.1;
  m.total_w = 0.5;
  m.l2_write_share = 0.3;
  m.l2_miss_rate = 0.2;
  return m;
}

TEST(Report, MetricsJsonHasAllFields) {
  std::ostringstream os;
  write_metrics_json(os, sample_metrics());
  const std::string out = os.str();
  for (const char* field : {"\"arch\":\"C1\"", "\"benchmark\":\"bfs\"", "\"ipc\":2.5",
                            "\"cycles\":1000", "\"total_w\":0.5"}) {
    EXPECT_NE(out.find(field), std::string::npos) << out;
  }
}

TEST(Report, MatrixJsonWrapsRuns) {
  std::ostringstream os;
  write_matrix_json(os, {sample_metrics(), sample_metrics()});
  const std::string out = os.str();
  EXPECT_EQ(out.find("{\"runs\":["), 0u);
  EXPECT_EQ(out.rfind("]}"), out.size() - 2);
}

TEST(Report, RunJsonIncludesCountersAndEnergy) {
  const ArchSpec spec = make_arch(Architecture::kC1);
  const workload::Workload w = workload::make_benchmark("hotspot", 0.04);
  gpu::RunResult run;
  const Metrics m = run_one_detailed(spec, w, run);

  std::ostringstream os;
  write_run_json(os, m, run);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"counters\""), std::string::npos);
  EXPECT_NE(out.find("\"w_demand\""), std::string::npos);
  EXPECT_NE(out.find("\"energy_pj\""), std::string::npos);
  EXPECT_NE(out.find("l2.hr.data_write"), std::string::npos);
  EXPECT_NE(out.find("\"sm\""), std::string::npos);
}

TEST(Report, DetailedRunMatchesPlainRun) {
  const ArchSpec spec = make_arch(Architecture::kSramBaseline);
  const workload::Workload w = workload::make_benchmark("nw", 0.04);
  gpu::RunResult run;
  const Metrics detailed = run_one_detailed(spec, w, run);
  const Metrics plain = run_one(spec, w);
  EXPECT_EQ(detailed.cycles, plain.cycles);
  EXPECT_DOUBLE_EQ(detailed.ipc, plain.ipc);
  EXPECT_EQ(run.cycles, detailed.cycles);
}

}  // namespace
}  // namespace sttgpu::sim
