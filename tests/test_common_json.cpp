#include "common/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <sstream>

#include "common/error.hpp"

namespace sttgpu {
namespace {

std::string write(const std::function<void(JsonWriter&)>& fn) {
  std::ostringstream os;
  JsonWriter w(os);
  fn(w);
  EXPECT_TRUE(w.complete());
  return os.str();
}

TEST(Json, EmptyObjectAndArray) {
  EXPECT_EQ(write([](JsonWriter& w) { w.begin_object().end_object(); }), "{}");
  EXPECT_EQ(write([](JsonWriter& w) { w.begin_array().end_array(); }), "[]");
}

TEST(Json, KeyValuePairs) {
  const std::string out = write([](JsonWriter& w) {
    w.begin_object();
    w.key("a").value(1);
    w.key("b").value("x");
    w.key("c").value(true);
    w.key("d").null();
    w.end_object();
  });
  EXPECT_EQ(out, R"({"a":1,"b":"x","c":true,"d":null})");
}

TEST(Json, NestedStructures) {
  const std::string out = write([](JsonWriter& w) {
    w.begin_object();
    w.key("rows").begin_array();
    w.begin_object().key("n").value(std::uint64_t{42}).end_object();
    w.value(3.5);
    w.end_array();
    w.end_object();
  });
  EXPECT_EQ(out, R"({"rows":[{"n":42},3.5]})");
}

TEST(Json, EscapesStrings) {
  const std::string out =
      write([](JsonWriter& w) { w.value("a\"b\\c\nd"); });
  EXPECT_EQ(out, R"("a\"b\\c\nd")");
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  const std::string out = write([](JsonWriter& w) {
    w.begin_array();
    w.value(std::numeric_limits<double>::infinity());
    w.value(std::numeric_limits<double>::quiet_NaN());
    w.end_array();
  });
  EXPECT_EQ(out, "[null,null]");
}

TEST(Json, RejectsProtocolViolations) {
  std::ostringstream os;
  {
    JsonWriter w(os);
    w.begin_object();
    EXPECT_THROW(w.value(1), SimError);  // value without key
    EXPECT_THROW(w.end_array(), SimError);
  }
  {
    JsonWriter w(os);
    w.begin_array();
    EXPECT_THROW(w.key("k"), SimError);  // key inside array
  }
  {
    JsonWriter w(os);
    w.value(1);
    EXPECT_THROW(w.value(2), SimError);  // second root
  }
}

TEST(Json, ArrayOfScalars) {
  const std::string out = write([](JsonWriter& w) {
    w.begin_array();
    w.value(1).value(2).value(-3);
    w.end_array();
  });
  EXPECT_EQ(out, "[1,2,-3]");
}

}  // namespace
}  // namespace sttgpu
