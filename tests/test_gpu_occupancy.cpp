#include "gpu/occupancy.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace sttgpu::gpu {
namespace {

workload::KernelSpec kernel(unsigned threads, unsigned regs, unsigned shared = 0) {
  workload::KernelSpec k;
  k.name = "test";
  k.threads_per_block = threads;
  k.regs_per_thread = regs;
  k.shared_bytes_per_block = shared;
  return k;
}

TEST(Occupancy, ThreadLimited) {
  const GpuConfig cfg;  // 1536 threads, 8 blocks, 32K regs, 48KB shared
  const Occupancy occ = compute_occupancy(kernel(512, 8), cfg);
  EXPECT_EQ(occ.blocks_per_sm, 3u);  // 1536/512
  EXPECT_STREQ(occ.limiter, "threads");
  EXPECT_EQ(occ.warps_per_sm, 48u);
}

TEST(Occupancy, BlockLimited) {
  const GpuConfig cfg;
  const Occupancy occ = compute_occupancy(kernel(64, 8), cfg);
  EXPECT_EQ(occ.blocks_per_sm, 8u);
  EXPECT_STREQ(occ.limiter, "blocks");
  EXPECT_EQ(occ.warps_per_sm, 16u);
}

TEST(Occupancy, RegisterLimited) {
  const GpuConfig cfg;
  // 256 threads x 43 regs = 11008/block: 32768 fits 2.
  const Occupancy occ = compute_occupancy(kernel(256, 43), cfg);
  EXPECT_EQ(occ.blocks_per_sm, 2u);
  EXPECT_STREQ(occ.limiter, "registers");
}

TEST(Occupancy, RegisterBoostAddsABlock) {
  // The C2/C3 mechanism: a bigger register file admits one more block.
  GpuConfig cfg;
  cfg.registers_per_sm = 35776;
  const Occupancy occ = compute_occupancy(kernel(256, 43), cfg);
  EXPECT_EQ(occ.blocks_per_sm, 3u);
  EXPECT_EQ(occ.warps_per_sm, 24u);
}

TEST(Occupancy, SharedMemoryLimited) {
  const GpuConfig cfg;
  const Occupancy occ = compute_occupancy(kernel(64, 8, 16 * 1024), cfg);
  EXPECT_EQ(occ.blocks_per_sm, 3u);  // 48KB / 16KB
  EXPECT_STREQ(occ.limiter, "shared");
}

TEST(Occupancy, WarpSlotCap) {
  GpuConfig cfg;
  cfg.max_warps_per_sm = 24;
  const Occupancy occ = compute_occupancy(kernel(512, 8), cfg);
  EXPECT_LE(occ.warps_per_sm, 24u);
  EXPECT_STREQ(occ.limiter, "warp-slots");
}

TEST(Occupancy, RejectsUnlaunchableKernels) {
  const GpuConfig cfg;
  EXPECT_THROW(compute_occupancy(kernel(2048, 8), cfg), SimError);   // too many threads
  EXPECT_THROW(compute_occupancy(kernel(256, 200), cfg), SimError);  // too many regs
  EXPECT_THROW(compute_occupancy(kernel(100, 8), cfg), SimError);    // not warp multiple
}

// Parameterized sweep: occupancy is monotone non-decreasing in register file
// size — the Table 2 premise.
class RegSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(RegSweep, MonotoneInRegisterFile) {
  GpuConfig small, big;
  small.registers_per_sm = 32768;
  big.registers_per_sm = 32768 + 4096;
  const auto k = kernel(256, GetParam());
  const Occupancy a = compute_occupancy(k, small);
  const Occupancy b = compute_occupancy(k, big);
  EXPECT_GE(b.blocks_per_sm, a.blocks_per_sm);
  EXPECT_GE(a.blocks_per_sm, 1u);
}

INSTANTIATE_TEST_SUITE_P(RegsPerThread, RegSweep,
                         ::testing::Values(16, 20, 26, 32, 43, 52, 63));

}  // namespace
}  // namespace sttgpu::gpu
