// EventWheel unit tests: bucket wrap-around, far-heap promotion, same-cycle
// ordering, cancel/re-post staleness, past-deadline clamping, and the
// large-jump sweep path.
#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "sim/event_wheel.hpp"

namespace sttgpu::sim {
namespace {

std::vector<unsigned> ids_of(std::uint64_t mask) {
  std::vector<unsigned> ids;
  for (; mask != 0; mask &= mask - 1) {
    ids.push_back(static_cast<unsigned>(std::countr_zero(mask)));
  }
  return ids;
}

TEST(EventWheel, PopsAtExactCycleOnly) {
  EventWheel w(8);
  w.post(3, 10);
  for (Cycle c = 0; c < 10; ++c) EXPECT_EQ(w.pop_due(c), 0u) << c;
  EXPECT_EQ(w.pop_due(10), 1ull << 3);
  EXPECT_EQ(w.posted(3), kNoCycle);  // consumed
  EXPECT_EQ(w.pop_due(11), 0u);
}

TEST(EventWheel, SameCycleYieldsAscendingIdMask) {
  EventWheel w(64);
  // Post in scrambled order; the mask is inherently id-ordered, which is
  // what gives the hot loop its bank-then-SM ascending visit order.
  for (const unsigned id : {17u, 2u, 63u, 0u, 41u}) w.post(id, 5);
  const std::uint64_t due = w.pop_due(5);
  EXPECT_EQ(ids_of(due), (std::vector<unsigned>{0, 2, 17, 41, 63}));
}

TEST(EventWheel, PastDeadlineClampsToNextPop) {
  EventWheel w(4);
  ASSERT_EQ(w.pop_due(20), 0u);  // advance: wheel now at cycle 21
  w.post(1, 3);                  // long past; must not be lost
  EXPECT_EQ(w.posted(1), 21u);
  EXPECT_EQ(w.pop_due(21), 1ull << 1);
}

TEST(EventWheel, TighteningKeepsEarliestAndStrandsLater) {
  EventWheel w(4);
  w.post(2, 100);
  w.post(2, 40);  // earlier wins
  EXPECT_EQ(w.posted(2), 40u);
  w.post(2, 60);  // later than outstanding: no-op
  EXPECT_EQ(w.posted(2), 40u);
  std::uint64_t due = 0;
  for (Cycle c = 0; c <= 100; ++c) due |= w.pop_due(c) << (c == 40 ? 0 : 32);
  // Fires at 40; the stranded entry at 100 must not fire again.
  EXPECT_EQ(due, 1ull << 2);
}

TEST(EventWheel, CancelStrandsEntryAndRepostWorks) {
  EventWheel w(4);
  w.post(0, 7);
  w.cancel(0);
  EXPECT_EQ(w.posted(0), kNoCycle);
  EXPECT_EQ(w.pop_due(7), 0u);  // stranded entry evaporates silently
  w.post(0, 9);                 // re-post after cancel
  EXPECT_EQ(w.pop_due(8), 0u);
  EXPECT_EQ(w.pop_due(9), 1ull << 0);
}

TEST(EventWheel, BucketIndexWrapAround) {
  EventWheel w(8);
  // Advance near the horizon so new deadlines wrap modulo kBuckets.
  ASSERT_EQ(w.pop_due(EventWheel::kBuckets - 10), 0u);
  const Cycle when = EventWheel::kBuckets + 5;  // index wraps past 0
  w.post(4, when);
  EXPECT_EQ(w.pop_due(when - 1), 0u);
  EXPECT_EQ(w.pop_due(when), 1ull << 4);
}

TEST(EventWheel, FarHeapPromotionDeliversAtExactCycle) {
  EventWheel w(8);
  const Cycle far = 3 * EventWheel::kBuckets + 17;  // well past the horizon
  w.post(5, far);
  EXPECT_EQ(w.far_size(), 1u);
  // Step the wheel in jumps that cross the promotion boundary.
  Cycle c = 0;
  std::uint64_t due = 0;
  while (c < far) {
    c += EventWheel::kBuckets / 2;
    if (c > far) c = far;
    const std::uint64_t got = w.pop_due(c);
    if (got != 0) {
      EXPECT_EQ(c, far);
      due |= got;
    }
  }
  EXPECT_EQ(due, 1ull << 5);
  EXPECT_EQ(w.far_size(), 0u);
}

TEST(EventWheel, FarHeapStaleEntriesPruned) {
  EventWheel w(8);
  const Cycle far = 2 * EventWheel::kBuckets;
  w.post(1, far);
  w.post(1, 5);  // tighten: far entry goes stale
  EXPECT_EQ(w.pop_due(5), 1ull << 1);
  // The stale far entry must neither fire nor survive next_deadline pruning.
  EXPECT_EQ(w.next_deadline(), kNoCycle);
  std::uint64_t due = 0;
  for (Cycle c = 6; c <= far; c += 64) due |= w.pop_due(c);
  EXPECT_EQ(due, 0u);
}

TEST(EventWheel, LargeJumpSweepFindsEverything) {
  EventWheel w(16);
  // Deadlines scattered across the near horizon; one jump far past them all
  // exercises the full occupancy-bitmap sweep (> kSmallSpan).
  for (unsigned id = 0; id < 16; ++id) w.post(id, 3 + 61 * id);
  const std::uint64_t due = w.pop_due(1000);
  EXPECT_EQ(due, 0xFFFFull);
  EXPECT_EQ(w.occupied_buckets(), 0u);
}

TEST(EventWheel, NextDeadlineNearAndFar) {
  EventWheel w(8);
  EXPECT_EQ(w.next_deadline(), kNoCycle);
  const Cycle far = 5 * EventWheel::kBuckets;
  w.post(2, far);
  EXPECT_EQ(w.next_deadline(), far);
  w.post(3, 12);
  EXPECT_EQ(w.next_deadline(), 12u);
  EXPECT_EQ(w.pop_due(12), 1ull << 3);
  EXPECT_EQ(w.next_deadline(), far);
}

TEST(EventWheel, DiagnosticsTrackHighWater) {
  EventWheel w(8);
  w.post(0, 10);
  w.post(1, 11);
  w.post(2, 2 * EventWheel::kBuckets);
  EXPECT_EQ(w.occupied_buckets(), 2u);
  EXPECT_GE(w.bucket_high_water(), 2u);
  EXPECT_EQ(w.far_high_water(), 1u);
  EXPECT_EQ(w.posted_ids(), 3u);
  (void)w.pop_due(11);
  EXPECT_EQ(w.occupied_buckets(), 0u);
  EXPECT_EQ(w.posted_ids(), 1u);  // only the far entry remains
}

}  // namespace
}  // namespace sttgpu::sim
