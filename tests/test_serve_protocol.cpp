#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>

#include <sys/socket.h>
#include <unistd.h>

#include "common/config.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "sim/knobs.hpp"

namespace sttgpu::serve {
namespace {

/// A connected unix socket pair; [0] and [1] are the two ends.
struct SocketPair {
  int fd[2] = {-1, -1};
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fd), 0); }
  ~SocketPair() {
    if (fd[0] >= 0) ::close(fd[0]);
    if (fd[1] >= 0) ::close(fd[1]);
  }
  void close_writer() {
    ::close(fd[0]);
    fd[0] = -1;
  }
};

TEST(Framing, RoundTripsPayloads) {
  SocketPair s;
  write_frame(s.fd[0], R"({"verb":"status"})");
  write_frame(s.fd[0], "");  // empty payload is a valid frame
  EXPECT_EQ(read_frame(s.fd[1]).value(), R"({"verb":"status"})");
  EXPECT_EQ(read_frame(s.fd[1]).value(), "");
}

TEST(Framing, CleanEofAtBoundaryIsNullopt) {
  SocketPair s;
  write_frame(s.fd[0], "x");
  s.close_writer();
  EXPECT_EQ(read_frame(s.fd[1]).value(), "x");
  EXPECT_FALSE(read_frame(s.fd[1]).has_value());
}

TEST(Framing, RejectsBadMagic) {
  SocketPair s;
  // An HTTP request must not parse as a frame.
  const char junk[] = "GET / HTTP/1.1\r\n";
  write_all(s.fd[0], junk, sizeof junk - 1);
  EXPECT_THROW(read_frame(s.fd[1]), SimError);
}

TEST(Framing, RejectsOversizedLength) {
  SocketPair s;
  char header[8];
  std::memcpy(header, kFrameMagic, 4);
  const std::uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(header + 4, &huge, 4);
  write_all(s.fd[0], header, sizeof header);
  EXPECT_THROW(read_frame(s.fd[1]), SimError);
}

TEST(Framing, RejectsTornFrame) {
  SocketPair s;
  char header[8];
  std::memcpy(header, kFrameMagic, 4);
  const std::uint32_t len = 10;
  std::memcpy(header + 4, &len, 4);
  write_all(s.fd[0], header, sizeof header);
  write_all(s.fd[0], "abc", 3);  // 3 of the promised 10 bytes
  s.close_writer();
  EXPECT_THROW(read_frame(s.fd[1]), SimError);
}

TEST(Envelope, RequireVersionAcceptsCurrentOnly) {
  require_version(parse_json(R"({"protocol_version":1,"verb":"status"})"));
  EXPECT_THROW(require_version(parse_json(R"({"verb":"status"})")), ProtocolMismatch);
  EXPECT_THROW(require_version(parse_json(R"({"protocol_version":99})")),
               ProtocolMismatch);
}

TEST(Envelope, CheckResponseMapsErrorKinds) {
  check_response(parse_json(R"({"protocol_version":1,"ok":true})"));
  // A generic server error surfaces as SimError with the server's message.
  try {
    check_response(parse_json(error_response("boom")));
    FAIL() << "expected SimError";
  } catch (const ProtocolMismatch&) {
    FAIL() << "generic errors must not map to ProtocolMismatch";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
  // kind=="protocol" maps to ProtocolMismatch (CLI exit code 7).
  EXPECT_THROW(check_response(parse_json(error_response("bad version", true))),
               ProtocolMismatch);
}

// --- the RunOptions <-> JSON satellite (sim/knobs.hpp) ----------------------

TEST(OptionsJson, ConfigFromJsonPreservesRawNumberText) {
  const JsonValue obj =
      parse_json(R"({"scale":0.05,"faults":true,"ecc":false,"arch":"C1"})");
  const Config cfg = sim::config_from_json(obj);
  // The number's source text survives verbatim — the server-side strtod
  // sees exactly what the CLI would have seen on argv.
  EXPECT_EQ(cfg.get_string("scale", ""), "0.05");
  EXPECT_EQ(cfg.get_string("faults", ""), "1");
  EXPECT_EQ(cfg.get_string("ecc", ""), "0");
  EXPECT_EQ(cfg.get_string("arch", ""), "C1");
}

TEST(OptionsJson, RejectsNonScalarKnobValues) {
  EXPECT_THROW(sim::config_from_json(parse_json(R"({"scale":[1,2]})")), SimError);
  EXPECT_THROW(sim::config_from_json(parse_json(R"({"scale":null})")), SimError);
  EXPECT_THROW(sim::config_from_json(parse_json(R"([1])")), SimError);
}

TEST(OptionsJson, RunOptionsRoundTripIsExact) {
  sim::RunOptions opts;
  opts.scale = 0.05;
  opts.fast_forward = false;
  opts.hotpath = 1;
  opts.tick_jobs = 3;
  opts.faults.enabled = true;
  opts.faults.seed = 7;
  opts.faults.accel = 2.5;
  opts.faults.ecc = false;

  std::ostringstream os;
  JsonWriter w(os);
  sim::run_options_to_json(w, opts);
  const Config cfg = sim::config_from_json(parse_json(os.str()));
  sim::validate_knobs(cfg, sim::kKnobSubmit, "submit");
  const sim::RunOptions back = sim::run_options_from_knobs(cfg, sim::kKnobSubmit);

  EXPECT_EQ(back.scale, opts.scale);
  EXPECT_EQ(back.fast_forward, opts.fast_forward);
  EXPECT_EQ(back.hotpath, opts.hotpath);
  EXPECT_EQ(back.tick_jobs, opts.tick_jobs);
  EXPECT_EQ(back.faults.enabled, opts.faults.enabled);
  EXPECT_EQ(back.faults.seed, opts.faults.seed);
  EXPECT_EQ(back.faults.accel, opts.faults.accel);
  EXPECT_EQ(back.faults.ecc, opts.faults.ecc);
}

TEST(OptionsJson, UnknownKnobRejectedWithValidList) {
  Config cfg;
  cfg.set("scail", "0.5");  // typo
  try {
    sim::validate_knobs(cfg, sim::kKnobSubmit, "submit");
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("scail"), std::string::npos);
    // The error teaches the valid spelling.
    EXPECT_NE(msg.find("scale"), std::string::npos);
  }
}

TEST(OptionsJson, WireDefaultsMatchCliDefaults) {
  // An empty submit options object resolves to exactly what the CLI
  // resolves from an empty argv — the registry is the single source.
  const Config empty;
  const sim::RunOptions opts = sim::run_options_from_knobs(empty, sim::kKnobSubmit);
  EXPECT_EQ(opts.scale, 0.5);
  EXPECT_TRUE(opts.fast_forward);
  EXPECT_EQ(opts.hotpath, 2u);
  EXPECT_EQ(opts.tick_jobs, 1u);
  EXPECT_FALSE(opts.faults.enabled);
  EXPECT_EQ(opts.faults.seed, 42u);
  EXPECT_EQ(opts.faults.accel, 1.0);
  EXPECT_TRUE(opts.faults.ecc);
}

}  // namespace
}  // namespace sttgpu::serve
