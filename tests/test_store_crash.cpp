// Crash-injection and multi-process coordination tests for the result
// store. Every scenario forks a real child process: SIGKILL mid-append is
// delivered for real (wal.hpp's byte-budget hook), and cross-process
// merging goes through the actual advisory flock — nothing is simulated
// in-process.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sched.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "store/record.hpp"
#include "store/result_store.hpp"
#include "store/wal.hpp"

namespace sttgpu::store {
namespace {

constexpr std::uint64_t kFp = 0xd180d94558f98587ull;
constexpr double kScale = 0.04;

void remove_store_files(const std::string& store_path) {
  std::remove(store_path.c_str());
  std::remove((store_path + ".lock").c_str());
  std::remove(ResultStore::quarantine_path_for(store_path).c_str());
}

ResultRow row_for_index(int i) {
  ResultRow r;
  r.arch = "C" + std::to_string(1 + i % 3);
  r.benchmark = "bench" + std::to_string(i);
  r.ipc = 1.0 + 0.125 * i;
  r.cycles = 10000 + static_cast<std::uint64_t>(i);
  r.dynamic_w = 0.5 + 0.01 * i;
  r.leakage_w = 0.1;
  r.total_w = r.dynamic_w + r.leakage_w;
  r.write_share = 0.25;
  r.miss_rate = 0.125;
  return r;
}

void expect_row_exact(const ResultRow& got, const ResultRow& want) {
  EXPECT_EQ(got.arch, want.arch);
  EXPECT_EQ(got.benchmark, want.benchmark);
  EXPECT_EQ(got.ipc, want.ipc);
  EXPECT_EQ(got.cycles, want.cycles);
  EXPECT_EQ(got.dynamic_w, want.dynamic_w);
  EXPECT_EQ(got.total_w, want.total_w);
}

/// Byte size of the batch wal_append() receives for put #i (the first put
/// also carries the meta record — put_many writes them as one append).
std::size_t append_size(int i) {
  std::size_t n = frame_record(encode_put(kFp, kScale, row_for_index(i))).size();
  if (i == 0) n += frame_record(kMetaPayload).size();
  return n;
}

/// Child body: crash after @p budget appended bytes while putting @p n rows
/// one at a time. Never returns through gtest — plain _exit codes only.
[[noreturn]] void crash_writer_child(const std::string& path, int n, long long budget) {
  testing_set_crash_at(budget);
  try {
    ResultStore store(path);
    for (int i = 0; i < n; ++i) store.put(kFp, kScale, row_for_index(i));
  } catch (...) {
    ::_exit(9);
  }
  ::_exit(0);  // budget was never crossed
}

TEST(StoreCrash, SigkillAtRandomizedOffsetsAlwaysRecoversTheDurablePrefix) {
  const std::string path = "test_store_crash_offsets.store";
  const int kRows = 8;
  std::size_t total = 0;
  for (int i = 0; i < kRows; ++i) total += append_size(i);

  // Deterministically seeded "random" byte offsets, plus the exact edges:
  // before the first append, on every append boundary, and past the end.
  std::vector<long long> budgets{0, static_cast<long long>(total),
                                 static_cast<long long>(total) + 64};
  {
    std::size_t cum = 0;
    for (int i = 0; i < kRows; ++i) {
      cum += append_size(i);
      budgets.push_back(static_cast<long long>(cum));      // boundary: row i lands
      budgets.push_back(static_cast<long long>(cum) - 3);  // torn mid-frame
    }
  }
  std::mt19937 rng(20260809u);
  std::uniform_int_distribution<long long> dist(1, static_cast<long long>(total) - 1);
  for (int k = 0; k < 12; ++k) budgets.push_back(dist(rng));

  for (const long long budget : budgets) {
    SCOPED_TRACE("crash budget = " + std::to_string(budget) + " bytes");
    remove_store_files(path);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) crash_writer_child(path, kRows, budget);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    if (budget < static_cast<long long>(total)) {
      ASSERT_TRUE(WIFSIGNALED(status));
      EXPECT_EQ(WTERMSIG(status), SIGKILL);
    } else {
      ASSERT_TRUE(WIFEXITED(status));
      EXPECT_EQ(WEXITSTATUS(status), 0);
    }

    // How many puts were fully handed to write(2) before the kill: exactly
    // the rows recovery must resurrect — no more, no fewer.
    int durable = 0;
    long long cum = 0;
    for (int i = 0; i < kRows; ++i) {
      cum += static_cast<long long>(append_size(i));
      if (cum <= budget) durable = i + 1;
    }

    ResultStore store(path);  // runs recovery (torn-tail truncation)
    EXPECT_EQ(store.size(), static_cast<std::size_t>(durable));
    for (int i = 0; i < durable; ++i) {
      const ResultRow want = row_for_index(i);
      const auto got = store.get(kFp, kScale, want.arch, want.benchmark);
      ASSERT_TRUE(got.has_value()) << "missing durable row " << i;
      expect_row_exact(*got, want);
    }
    // A torn append is damage-free loss, never corruption.
    EXPECT_EQ(store.stats().quarantine_incidents, 0u);

    // Resume: recompute only what went missing; the store ends complete.
    for (int i = durable; i < kRows; ++i) store.put(kFp, kScale, row_for_index(i));
    EXPECT_EQ(store.size(), static_cast<std::size_t>(kRows));
  }
  remove_store_files(path);
}

TEST(StoreCrash, TwoProcessesOnDisjointSlicesMergeWithoutLostRows) {
  const std::string path = "test_store_crash_merge.store";
  remove_store_files(path);
  const int kPerChild = 6;
  std::vector<pid_t> pids;
  for (int child = 0; child < 2; ++child) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      try {
        ResultStore store(path);
        for (int i = 0; i < kPerChild; ++i) {
          store.put(kFp, kScale, row_for_index(child * kPerChild + i));
          ::sched_yield();  // encourage interleaving with the sibling
        }
      } catch (...) {
        ::_exit(9);
      }
      ::_exit(0);
    }
    pids.push_back(pid);
  }
  for (const pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }
  ResultStore store(path);
  EXPECT_EQ(store.size(), static_cast<std::size_t>(2 * kPerChild));
  for (int i = 0; i < 2 * kPerChild; ++i) {
    const ResultRow want = row_for_index(i);
    const auto got = store.get(kFp, kScale, want.arch, want.benchmark);
    ASSERT_TRUE(got.has_value()) << "lost row " << i;
    expect_row_exact(*got, want);
  }
  EXPECT_TRUE(ResultStore::fsck(path).healthy());
  remove_store_files(path);
}

TEST(StoreCrash, ReaderSeesConsistentSnapshotsDuringActiveAppends) {
  const std::string path = "test_store_crash_reader.store";
  remove_store_files(path);
  const int kRows = 24;
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    try {
      ResultStore store(path);
      for (int i = 0; i < kRows; ++i) {
        store.put(kFp, kScale, row_for_index(i));
        ::sched_yield();
      }
    } catch (...) {
      ::_exit(9);
    }
    ::_exit(0);
  }

  ResultStore reader(path);
  std::size_t last_seen = 0;
  // Poll snapshots while the writer runs: row counts must be monotonic, and
  // every row in a snapshot must be a complete, exact record — never a torn
  // or half-applied one.
  for (int spin = 0; spin < 200000 && last_seen < static_cast<std::size_t>(kRows);
       ++spin) {
    reader.refresh();
    const std::vector<ResultRow> rows = reader.rows_for(kFp, kScale);
    EXPECT_GE(rows.size(), last_seen) << "snapshot went backwards";
    last_seen = rows.size();
    for (const ResultRow& got : rows) {
      ASSERT_EQ(got.benchmark.rfind("bench", 0), 0u);
      const int i = std::stoi(got.benchmark.substr(5));
      expect_row_exact(got, row_for_index(i));
    }
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  reader.refresh();
  EXPECT_EQ(reader.rows_for(kFp, kScale).size(), static_cast<std::size_t>(kRows));
  remove_store_files(path);
}

TEST(StoreCrash, EnvironmentVariableSeedsTheCrashBudgetInFreshProcesses) {
  // STTGPU_STORE_CRASH_AT exists so the CI smoke can SIGKILL a *real*
  // `sttgpu matrix` run mid-append. The env probe fires once per exec (a
  // forked-but-not-exec'd child inherits the already-consumed probe), so
  // exercise it the way CI does: exec the CLI with the variable set.
  const std::string cli = "../tools/sttgpu";
  if (::access(cli.c_str(), X_OK) != 0) {
    GTEST_SKIP() << "sttgpu CLI not found at " << cli;
  }
  const std::string csv = "test_store_crash_env.csv";
  const std::string store_path = ResultStore::derive_path(csv);
  std::remove(csv.c_str());
  remove_store_files(store_path);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::setenv("STTGPU_STORE_CRASH_AT", "40", 1);
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      ::dup2(devnull, 1);
      ::dup2(devnull, 2);
    }
    ::execl(cli.c_str(), "sttgpu", "matrix", "scale=0.04", "jobs=1",
            ("cache=" + csv).c_str(), static_cast<char*>(nullptr));
    ::_exit(9);  // exec failed
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "status=" << status;
  EXPECT_EQ(WTERMSIG(status), SIGKILL);
  // 40 bytes of budget cannot hold the meta frame plus a put frame: the
  // matrix died inside its first durable append, leaving a torn tail that
  // recovery truncates without quarantining anything.
  ResultStore store(store_path);
  EXPECT_EQ(store.stats().quarantine_incidents, 0u);
  std::remove(csv.c_str());
  remove_store_files(store_path);
}

}  // namespace
}  // namespace sttgpu::store
