#include <gtest/gtest.h>

#include "bank_harness.hpp"
#include "nvm/cell.hpp"

namespace sttgpu::sttl2 {
namespace {

using testing_harness = sttgpu::testing::UniformHarness;

UniformBankConfig sram_cfg() {
  UniformBankConfig c;
  c.capacity_bytes = 16 * 1024;  // 8 sets x 8 ways of 256B
  return c;
}

TEST(UniformBank, ReadMissFetchesFromDramThenResponds) {
  testing_harness h(sram_cfg());
  const auto id = h.send(0x1000, /*is_store=*/false);
  h.run(5);
  EXPECT_FALSE(h.responded(id));  // DRAM latency not elapsed
  EXPECT_EQ(h.bank().stats().read_misses, 1u);
  h.drain();
  EXPECT_TRUE(h.responded(id));
  EXPECT_EQ(h.dram().reads(), 1u);
}

TEST(UniformBank, ReadHitIsFastAndLocal) {
  testing_harness h(sram_cfg());
  h.send(0x1000, false);
  h.drain();
  const auto id = h.send(0x1000, false);
  h.run(60);
  EXPECT_TRUE(h.responded(id));
  EXPECT_EQ(h.bank().stats().read_hits, 1u);
  EXPECT_EQ(h.dram().reads(), 1u);  // no second fetch
}

TEST(UniformBank, SecondaryMissesMergeIntoOneFill) {
  testing_harness h(sram_cfg());
  const auto a = h.send(0x2000, false);
  const auto b = h.send(0x2000, false);
  const auto c = h.send(0x2080, false);  // same 256B line
  h.drain();
  EXPECT_TRUE(h.responded(a));
  EXPECT_TRUE(h.responded(b));
  EXPECT_TRUE(h.responded(c));
  EXPECT_EQ(h.dram().reads(), 1u);
  EXPECT_EQ(h.bank().stats().read_misses, 3u);
}

TEST(UniformBank, WriteMissFetchesThenApplies) {
  testing_harness h(sram_cfg());
  const auto id = h.send(0x3000, /*is_store=*/true);
  h.drain();
  EXPECT_TRUE(h.responded(id));
  EXPECT_EQ(h.bank().stats().write_misses, 1u);
  EXPECT_EQ(h.dram().reads(), 1u);  // fetch-on-write
  // Line is now dirty: evicting it must write back.
}

TEST(UniformBank, DirtyEvictionWritesBack) {
  testing_harness h(sram_cfg());
  // 16KB, 8 sets: set stride = 8 * 256 = 2KB. Fill 9 lines in set 0.
  h.send(0x0, true);
  h.drain();
  for (int i = 1; i <= 8; ++i) h.send(static_cast<Addr>(i) * 2048, false);
  h.drain();
  EXPECT_EQ(h.dram().writes(), 1u);
  EXPECT_EQ(h.bank().counters().get("evict_dirty"), 1u);
}

TEST(UniformBank, EnergyChargedPerEvent) {
  testing_harness h(sram_cfg());
  h.send(0x100, false);
  h.drain();
  const auto& e = h.bank().energy();
  EXPECT_GT(e.category_pj("l2.tag_probe"), 0.0);
  EXPECT_GT(e.category_pj("l2.data_write"), 0.0);  // the fill
  h.send(0x100, false);
  h.drain();
  EXPECT_GT(e.category_pj("l2.data_read"), 0.0);
}

TEST(UniformBank, SttWritesOccupyLongerThanSramWrites) {
  // The paper's performance mechanism: 10-year STT writes serialize access.
  UniformBankConfig stt = sram_cfg();
  stt.cell = nvm::stt_cell(nvm::RetentionClass::kYears10);
  stt.subbanks = 1;
  UniformBankConfig sram = sram_cfg();
  sram.subbanks = 1;

  const auto time_burst = [](const UniformBankConfig& cfg) {
    testing_harness h(cfg);
    // Warm the lines.
    for (int i = 0; i < 8; ++i) h.send(static_cast<Addr>(i) * 256, false);
    h.drain();
    h.responses().clear();
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 8; ++i) ids.push_back(h.send(static_cast<Addr>(i) * 256, true));
    h.drain();
    Cycle last = 0;
    for (const auto& r : h.responses()) last = std::max(last, r.ready);
    return last;
  };

  EXPECT_GT(time_burst(stt), time_burst(sram));
}

TEST(UniformBank, VolatileCellsExpireWithoutRefresh) {
  // A uniform bank of low-retention cells loses idle lines: dirty ones are
  // written back, clean ones invalidated.
  UniformBankConfig cfg = sram_cfg();
  cfg.cell = nvm::stt_cell(nvm::RetentionClass::kUs26);  // 18550 cycles
  testing_harness h(cfg);
  h.send(0x100, true);   // dirty line
  h.send(0x2100, false); // clean line (different set)
  h.drain();
  const auto writes_before = h.dram().writes();
  h.run(25000);  // beyond 26.5us
  EXPECT_EQ(h.bank().counters().get("expired_dirty"), 1u);
  EXPECT_EQ(h.bank().counters().get("expired_clean"), 1u);
  EXPECT_EQ(h.dram().writes(), writes_before + 1);
  // Re-reading the expired line misses again.
  h.send(0x100, false);
  h.drain();
  EXPECT_EQ(h.dram().reads(), 3u);
}

TEST(UniformBank, RewriteIntervalsTracked) {
  testing_harness h(sram_cfg());
  h.send(0x100, true);
  h.drain();
  h.send(0x100, true);
  h.drain();
  EXPECT_EQ(h.bank().rewrite_intervals().intervals(), 1u);
}

TEST(UniformBank, NonVolatileCellsNeverExpire) {
  UniformBankConfig cfg = sram_cfg();
  cfg.cell = nvm::stt_cell(nvm::RetentionClass::kYears10);
  testing_harness h(cfg);
  h.send(0x100, true);
  h.drain();
  h.run(1'000'000);
  EXPECT_EQ(h.bank().counters().get("expired_dirty"), 0u);
  const auto id = h.send(0x100, false);
  h.drain();
  EXPECT_TRUE(h.responded(id));
  EXPECT_EQ(h.bank().stats().read_hits, 1u);
}

}  // namespace
}  // namespace sttgpu::sttl2
