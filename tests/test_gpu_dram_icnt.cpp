#include <gtest/gtest.h>

#include <vector>

#include "gpu/dram.hpp"
#include "gpu/interconnect.hpp"

namespace sttgpu::gpu {
namespace {

TEST(Dram, ReadCompletesAfterLatency) {
  GpuConfig cfg;
  cfg.dram_latency = 100;
  cfg.dram_service_gap = 4;
  std::vector<std::uint64_t> done;
  DramChannel dram(cfg, [&](std::uint64_t cookie, Cycle) { done.push_back(cookie); });

  dram.read(0x1000, 7, /*now=*/10);
  for (Cycle c = 10; c < 110; ++c) {
    dram.tick(c);
    EXPECT_TRUE(done.empty()) << "completed early at " << c;
  }
  dram.tick(110);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 7u);
  EXPECT_TRUE(dram.idle());
}

TEST(Dram, WritesConsumeBandwidthButNoCallback) {
  GpuConfig cfg;
  cfg.dram_latency = 100;
  cfg.dram_service_gap = 10;
  std::vector<std::uint64_t> done;
  DramChannel dram(cfg, [&](std::uint64_t cookie, Cycle) { done.push_back(cookie); });

  dram.write(0x2000, 0);  // occupies the channel until cycle 10
  dram.read(0x3000, 1, 0);
  dram.tick(105);
  EXPECT_TRUE(done.empty());  // read started at 10, completes at 110
  dram.tick(110);
  EXPECT_EQ(done.size(), 1u);
  EXPECT_EQ(dram.reads(), 1u);
  EXPECT_EQ(dram.writes(), 1u);
}

TEST(Dram, CompletionsInOrder) {
  GpuConfig cfg;
  std::vector<std::uint64_t> done;
  DramChannel dram(cfg, [&](std::uint64_t cookie, Cycle) { done.push_back(cookie); });
  for (std::uint64_t i = 0; i < 10; ++i) dram.read(i * 256, i, 0);
  for (Cycle c = 0; c < 2000; c += 7) dram.tick(c);
  dram.tick(5000);
  ASSERT_EQ(done.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(done[i], i);
}

TEST(Icnt, DeliversAfterLatency) {
  GpuConfig cfg;
  cfg.icnt_latency = 8;
  Interconnect icnt(cfg);

  L2Request req;
  req.id = 1;
  req.addr = 0x100;
  icnt.send_request(0, req, 0);

  int delivered = 0;
  icnt.deliver_requests(0, 7, [] { return true; },
                        [&](const L2Request&) { ++delivered; });
  EXPECT_EQ(delivered, 0);  // not yet arrived
  icnt.deliver_requests(0, 8, [] { return true; },
                        [&](const L2Request&) { ++delivered; });
  EXPECT_EQ(delivered, 1);
  EXPECT_TRUE(icnt.idle());
}

TEST(Icnt, BackpressureHoldsRequests) {
  GpuConfig cfg;
  Interconnect icnt(cfg);
  L2Request req;
  icnt.send_request(2, req, 0);
  int delivered = 0;
  icnt.deliver_requests(2, 100, [] { return false; },
                        [&](const L2Request&) { ++delivered; });
  EXPECT_EQ(delivered, 0);
  EXPECT_FALSE(icnt.idle());
  icnt.deliver_requests(2, 100, [] { return true; },
                        [&](const L2Request&) { ++delivered; });
  EXPECT_EQ(delivered, 1);
}

TEST(Icnt, ResponsesRoutedToOwningSm) {
  GpuConfig cfg;
  Interconnect icnt(cfg);
  L2Response resp;
  resp.id = 9;
  resp.sm_id = 4;
  icnt.send_response(resp, 0);

  int wrong = 0, right = 0;
  icnt.deliver_responses(3, 100, [&](const L2Response&) { ++wrong; });
  icnt.deliver_responses(4, 100, [&](const L2Response& r) {
    ++right;
    EXPECT_EQ(r.id, 9u);
  });
  EXPECT_EQ(wrong, 0);
  EXPECT_EQ(right, 1);
}

TEST(Icnt, PerPortBandwidthSerializes) {
  GpuConfig cfg;
  cfg.icnt_latency = 8;
  cfg.icnt_service_gap = 2;
  Interconnect icnt(cfg);
  L2Request req;
  for (int i = 0; i < 3; ++i) icnt.send_request(0, req, 0);

  int delivered = 0;
  const auto drain = [&](Cycle now) {
    icnt.deliver_requests(0, now, [] { return true; },
                          [&](const L2Request&) { ++delivered; });
  };
  drain(8);
  EXPECT_EQ(delivered, 1);  // arrivals at 8, 10, 12
  drain(10);
  EXPECT_EQ(delivered, 2);
  drain(12);
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(icnt.request_flits(), 3u);
}

}  // namespace
}  // namespace sttgpu::gpu
