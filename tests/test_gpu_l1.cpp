#include "gpu/l1_complex.hpp"

#include <gtest/gtest.h>

namespace sttgpu::gpu {
namespace {

using workload::MemSpace;
using Kind = workload::WarpInstr::Kind;

class L1Test : public ::testing::Test {
 protected:
  GpuConfig cfg_;
  L1Complex l1_{cfg_, 1};
  SmallVec<Addr, 2> wb_;
};

TEST_F(L1Test, LoadMissRequestsFill) {
  const L1Outcome out = l1_.access(0x1000, Kind::kLoad, MemSpace::kGlobal, 1);
  EXPECT_FALSE(out.hit);
  EXPECT_TRUE(out.send_read);
  EXPECT_FALSE(out.send_write);
}

TEST_F(L1Test, FillThenLoadHits) {
  l1_.fill(0x1000, MemSpace::kGlobal, 1, wb_);
  const L1Outcome out = l1_.access(0x1000, Kind::kLoad, MemSpace::kGlobal, 2);
  EXPECT_TRUE(out.hit);
  EXPECT_FALSE(out.send_read);
}

TEST_F(L1Test, GlobalStoreHitWriteEvicts) {
  // Paper Fig. 1b: global store hit => invalidate and forward to L2.
  l1_.fill(0x2000, MemSpace::kGlobal, 1, wb_);
  const L1Outcome out = l1_.access(0x2000, Kind::kStore, MemSpace::kGlobal, 2);
  EXPECT_TRUE(out.send_write);
  EXPECT_TRUE(out.writebacks.empty());
  // The line is gone: next load misses.
  EXPECT_TRUE(l1_.access(0x2000, Kind::kLoad, MemSpace::kGlobal, 3).send_read);
}

TEST_F(L1Test, GlobalStoreMissWriteNoAllocate) {
  const L1Outcome out = l1_.access(0x3000, Kind::kStore, MemSpace::kGlobal, 1);
  EXPECT_TRUE(out.send_write);
  // Not allocated.
  EXPECT_TRUE(l1_.access(0x3000, Kind::kLoad, MemSpace::kGlobal, 2).send_read);
}

TEST_F(L1Test, LocalStoreWriteBackAllocates) {
  const L1Outcome out = l1_.access(0x4000, Kind::kStore, MemSpace::kLocal, 1);
  EXPECT_FALSE(out.send_write);  // absorbed locally
  // Resident and dirty: a subsequent load hits.
  EXPECT_TRUE(l1_.access(0x4000, Kind::kLoad, MemSpace::kLocal, 2).hit);
}

TEST_F(L1Test, DirtyLocalEvictionProducesWriteback) {
  // Fill one L1D set with dirty local lines, then overflow it.
  // 16KB 4-way 128B lines => 32 sets; set stride = 32 * 128.
  const std::uint64_t stride = 32 * 128;
  for (int i = 0; i < 4; ++i) {
    l1_.access(0x10000 + i * stride, Kind::kStore, MemSpace::kLocal, i);
  }
  const L1Outcome out = l1_.access(0x10000 + 4 * stride, Kind::kStore, MemSpace::kLocal, 9);
  ASSERT_EQ(out.writebacks.size(), 1u);
  EXPECT_EQ(out.writebacks[0], 0x10000u);
}

TEST_F(L1Test, ConstAndTextureUseSeparateCaches) {
  l1_.fill(0x5000, MemSpace::kConstant, 1, wb_);
  // Same address in the data space still misses (separate array).
  EXPECT_TRUE(l1_.access(0x5000, Kind::kLoad, MemSpace::kGlobal, 2).send_read);
  EXPECT_TRUE(l1_.access(0x5000, Kind::kLoad, MemSpace::kConstant, 2).hit);
  l1_.fill(0x6000, MemSpace::kTexture, 3, wb_);
  EXPECT_TRUE(l1_.access(0x6000, Kind::kLoad, MemSpace::kTexture, 4).hit);
}

TEST_F(L1Test, FlushReturnsDirtyLinesAndInvalidatesAll) {
  l1_.access(0x4000, Kind::kStore, MemSpace::kLocal, 1);   // dirty local
  l1_.fill(0x1000, MemSpace::kGlobal, 1, wb_);             // clean global
  const std::vector<Addr> dirty = l1_.flush();
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0], 0x4000u);
  // Everything is gone.
  EXPECT_TRUE(l1_.access(0x1000, Kind::kLoad, MemSpace::kGlobal, 5).send_read);
  EXPECT_FALSE(l1_.access(0x4000, Kind::kLoad, MemSpace::kLocal, 5).hit);
}

TEST_F(L1Test, CountersTrackHitsAndMisses) {
  l1_.fill(0x1000, MemSpace::kGlobal, 1, wb_);  // counted as the demand miss
  l1_.access(0x1000, Kind::kLoad, MemSpace::kGlobal, 2);
  l1_.access(0x1000, Kind::kLoad, MemSpace::kGlobal, 3);
  EXPECT_EQ(l1_.data_counters().load_hits, 2u);
  EXPECT_EQ(l1_.data_counters().load_misses, 1u);
}

}  // namespace
}  // namespace sttgpu::gpu
