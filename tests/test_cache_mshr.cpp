#include "cache/mshr.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace sttgpu::cache {
namespace {

TEST(Mshr, RejectsZeroCapacity) {
  EXPECT_THROW(MshrFile(0, 4), SimError);
  EXPECT_THROW(MshrFile(4, 0), SimError);
}

TEST(Mshr, AllocateTrackThenRelease) {
  MshrFile mshr(4, 4);
  EXPECT_FALSE(mshr.has_entry(0x100));
  mshr.allocate(0x100, 1);
  EXPECT_TRUE(mshr.has_entry(0x100));
  EXPECT_EQ(mshr.outstanding_lines(), 1u);
  const auto reqs = mshr.release(0x100);
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0], 1u);
  EXPECT_FALSE(mshr.has_entry(0x100));
}

TEST(Mshr, MergesSecondaryMisses) {
  MshrFile mshr(4, 3);
  mshr.allocate(0x200, 10);
  EXPECT_TRUE(mshr.can_merge(0x200));
  mshr.merge(0x200, 11);
  mshr.merge(0x200, 12);
  EXPECT_FALSE(mshr.can_merge(0x200));  // merge capacity 3 reached
  const auto reqs = mshr.release(0x200);
  EXPECT_EQ(reqs, (std::vector<RequestId>{10, 11, 12}));
}

TEST(Mshr, FullWhenAllEntriesUsed) {
  MshrFile mshr(2, 2);
  mshr.allocate(0x100, 1);
  EXPECT_FALSE(mshr.full());
  mshr.allocate(0x200, 2);
  EXPECT_TRUE(mshr.full());
  mshr.release(0x100);
  EXPECT_FALSE(mshr.full());
}

TEST(Mshr, CanMergeIsFalseWithoutEntry) {
  MshrFile mshr(2, 2);
  EXPECT_FALSE(mshr.can_merge(0x300));
}

TEST(Mshr, ViolationsAreAssertions) {
  MshrFile mshr(1, 1);
  mshr.allocate(0x100, 1);
  EXPECT_THROW(mshr.allocate(0x100, 2), std::logic_error);  // duplicate
  EXPECT_THROW(mshr.allocate(0x200, 3), std::logic_error);  // full
  EXPECT_THROW(mshr.merge(0x100, 4), std::logic_error);     // merge cap
  EXPECT_THROW(mshr.release(0x999), std::logic_error);      // missing
}

}  // namespace
}  // namespace sttgpu::cache
