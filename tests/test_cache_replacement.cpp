#include "cache/replacement.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace sttgpu::cache {
namespace {

TEST(Lru, EvictsLeastRecentlyUsed) {
  LruPolicy lru(1, 4);
  const WayMask all_valid(4, true);
  lru.on_insert(0, 0);
  lru.on_insert(0, 1);
  lru.on_insert(0, 2);
  lru.on_insert(0, 3);
  lru.on_access(0, 0);  // 1 is now LRU
  EXPECT_EQ(lru.victim(0, all_valid.bits()), 1u);
  lru.on_access(0, 1);
  EXPECT_EQ(lru.victim(0, all_valid.bits()), 2u);
}

TEST(Lru, InvalidateMakesWayVictim) {
  LruPolicy lru(1, 4);
  const WayMask all_valid(4, true);
  for (unsigned w = 0; w < 4; ++w) lru.on_insert(0, w);
  lru.on_invalidate(0, 2);
  EXPECT_EQ(lru.victim(0, all_valid.bits()), 2u);
}

TEST(Fifo, IgnoresAccesses) {
  FifoPolicy fifo(1, 3);
  const WayMask all_valid(3, true);
  fifo.on_insert(0, 0);
  fifo.on_insert(0, 1);
  fifo.on_insert(0, 2);
  fifo.on_access(0, 0);  // must not promote way 0
  EXPECT_EQ(fifo.victim(0, all_valid.bits()), 0u);
}

TEST(TreePlru, RequiresPow2Ways) {
  EXPECT_THROW(TreePlruPolicy(1, 3), SimError);
  EXPECT_THROW(TreePlruPolicy(1, 7), SimError);
  EXPECT_NO_THROW(TreePlruPolicy(1, 8));
}

TEST(TreePlru, VictimAvoidsRecentlyTouched) {
  TreePlruPolicy plru(1, 4);
  const WayMask all_valid(4, true);
  for (unsigned w = 0; w < 4; ++w) plru.on_insert(0, w);
  plru.on_access(0, 3);
  EXPECT_NE(plru.victim(0, all_valid.bits()), 3u);
  plru.on_access(0, 0);
  EXPECT_NE(plru.victim(0, all_valid.bits()), 0u);
}

TEST(Random, DeterministicWithSeed) {
  RandomPolicy a(4, 8, 99), b(4, 8, 99);
  const WayMask all_valid(8, true);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.victim(0, all_valid.bits()), b.victim(0, all_valid.bits()));
  }
}

TEST(Factory, MakesEveryKind) {
  for (const auto kind : {ReplacementKind::kLru, ReplacementKind::kFifo,
                          ReplacementKind::kRandom, ReplacementKind::kTreePlru}) {
    const auto p = make_replacement(kind, 4, 8);
    ASSERT_NE(p, nullptr);
    EXPECT_FALSE(p->name().empty());
  }
}

TEST(WayMask, WideMasksSpanMultipleWords) {
  // A fully-associative LR part can exceed 64 ways; the packed view must
  // address bits in every word.
  WayMask mask(192, true);
  mask.set(0, false);
  mask.set(100, false);
  mask.set(191, false);
  const ValidBits bits = mask.bits();
  EXPECT_FALSE(bits.test(0));
  EXPECT_TRUE(bits.test(63));
  EXPECT_FALSE(bits.test(100));
  EXPECT_FALSE(bits.test(191));
  LruPolicy lru(1, 192);
  for (unsigned w = 0; w < 192; ++w) lru.on_insert(0, w);
  EXPECT_EQ(lru.victim(0, bits), 0u);  // first invalid way wins
  mask.set(0, true);
  EXPECT_EQ(lru.victim(0, mask.bits()), 100u);
}

// Parameterized contract tests every policy must satisfy.
class PolicyContract : public ::testing::TestWithParam<ReplacementKind> {
 protected:
  static constexpr unsigned kWays = 8;
  std::unique_ptr<ReplacementPolicy> policy_ = make_replacement(GetParam(), 16, kWays, 7);
};

TEST_P(PolicyContract, PrefersInvalidWays) {
  WayMask valid(kWays, true);
  valid.set(5, false);
  for (unsigned w = 0; w < kWays; ++w) policy_->on_insert(3, w);
  EXPECT_EQ(policy_->victim(3, valid.bits()), 5u);
}

TEST_P(PolicyContract, VictimInRange) {
  const WayMask all_valid(kWays, true);
  for (unsigned w = 0; w < kWays; ++w) policy_->on_insert(0, w);
  for (int i = 0; i < 200; ++i) {
    const unsigned v = policy_->victim(0, all_valid.bits());
    EXPECT_LT(v, kWays);
    policy_->on_insert(0, v);  // simulate replacement
  }
}

TEST_P(PolicyContract, SetsAreIndependent) {
  const WayMask all_valid(kWays, true);
  for (unsigned w = 0; w < kWays; ++w) {
    policy_->on_insert(0, w);
    policy_->on_insert(1, w);
  }
  // Touching set 0 must not change set 1's choice.
  const unsigned before = policy_->victim(1, all_valid.bits());
  for (int i = 0; i < 10; ++i) policy_->on_access(0, i % kWays);
  if (GetParam() != ReplacementKind::kRandom) {
    EXPECT_EQ(policy_->victim(1, all_valid.bits()), before);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyContract,
                         ::testing::Values(ReplacementKind::kLru, ReplacementKind::kFifo,
                                           ReplacementKind::kRandom,
                                           ReplacementKind::kTreePlru));

}  // namespace
}  // namespace sttgpu::cache
