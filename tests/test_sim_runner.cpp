#include "sim/runner.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "sim/probe.hpp"

namespace sttgpu::sim {
namespace {

constexpr double kTinyScale = 0.04;

TEST(Runner, RunOneProducesSaneMetrics) {
  const Metrics m = run_one(Architecture::kSramBaseline, "hotspot", kTinyScale);
  EXPECT_EQ(m.arch, "sram");
  EXPECT_EQ(m.benchmark, "hotspot");
  EXPECT_GT(m.ipc, 0.0);
  EXPECT_GT(m.cycles, 0u);
  EXPECT_GT(m.dynamic_w, 0.0);
  EXPECT_GT(m.leakage_w, 0.0);
  EXPECT_NEAR(m.total_w, m.dynamic_w + m.leakage_w, 1e-12);
  EXPECT_GE(m.l2_write_share, 0.0);
  EXPECT_LE(m.l2_write_share, 1.0);
}

TEST(Runner, DeterministicAcrossCalls) {
  const Metrics a = run_one(Architecture::kC1, "kmeans", kTinyScale);
  const Metrics b = run_one(Architecture::kC1, "kmeans", kTinyScale);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
  EXPECT_DOUBLE_EQ(a.dynamic_w, b.dynamic_w);
}

TEST(Runner, CacheRoundTrip) {
  const std::string path = "test_runner_cache.csv";
  std::remove(path.c_str());
  Metrics m;
  m.arch = "C1";
  m.benchmark = "bfs";
  m.ipc = 1.25;
  m.cycles = 123456;
  m.dynamic_w = 0.5;
  m.leakage_w = 0.1;
  m.total_w = 0.6;
  m.l2_write_share = 0.4;
  m.l2_miss_rate = 0.2;
  save_cache(path, {m});
  const auto cache = load_cache(path);
  ASSERT_EQ(cache.size(), 1u);
  const Metrics& r = cache.at({"C1", "bfs"});
  EXPECT_DOUBLE_EQ(r.ipc, 1.25);
  EXPECT_EQ(r.cycles, 123456u);
  EXPECT_DOUBLE_EQ(r.total_w, 0.6);
  std::remove(path.c_str());
}

TEST(Runner, LoadCacheMissingFileIsEmpty) {
  EXPECT_TRUE(load_cache("nonexistent_file_xyz.csv").empty());
}

TEST(Runner, ByBenchmarkFilters) {
  Metrics a, b;
  a.arch = "sram";
  a.benchmark = "bfs";
  b.arch = "C1";
  b.benchmark = "bfs";
  const auto idx = by_benchmark({a, b}, "C1");
  ASSERT_EQ(idx.size(), 1u);
  EXPECT_EQ(idx.at("bfs").arch, "C1");
}

TEST(Probe, TwoPartProbeCollectsInternals) {
  const TwoPartProbe p = run_two_part("kmeans", c1_bank_config(), kTinyScale);
  EXPECT_GT(p.counters.get("w_demand"), 0u);
  EXPECT_GE(p.lr_write_utilization, 0.0);
  EXPECT_LE(p.lr_write_utilization, 1.0);
  EXPECT_EQ(p.lr_interval_fractions.size(), 6u);
  double sum = 0.0;
  for (const double f : p.lr_interval_fractions) sum += f;
  if (p.lr_intervals > 0) {
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  EXPECT_GE(p.hr_within_40ms, 0.0);
  EXPECT_LE(p.hr_within_40ms, 1.0);
}

TEST(Probe, UniformProbeCollectsWriteVariation) {
  const UniformProbe p = run_uniform("bfs", sram_bank_config(), kTinyScale);
  EXPECT_GT(p.metrics.ipc, 0.0);
  EXPECT_GE(p.inter_set_cov, 0.0);
  EXPECT_GE(p.intra_set_cov, 0.0);
  EXPECT_GT(p.write_share, 0.0);
}

TEST(Probe, DefaultConfigsMatchArchRegistry) {
  const auto c1 = c1_bank_config();
  EXPECT_EQ(c1.hr_bytes, 224u * 1024);
  EXPECT_EQ(c1.lr_bytes, 32u * 1024);
  const auto sram = sram_bank_config();
  EXPECT_EQ(sram.capacity_bytes, 64u * 1024);
}

}  // namespace
}  // namespace sttgpu::sim
