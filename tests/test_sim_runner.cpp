#include "sim/runner.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "sim/probe.hpp"
#include "store/result_store.hpp"

namespace sttgpu::sim {
namespace {

constexpr double kTinyScale = 0.04;

// Removes a test cache CSV together with its store sidecars; stale sidecars
// from a previous run would otherwise let the matrix resume from the store
// and invalidate cold-cache assumptions.
void remove_cache_files(const std::string& csv_path) {
  std::remove(csv_path.c_str());
  const std::string store = store::ResultStore::derive_path(csv_path);
  std::remove(store.c_str());
  std::remove((store + ".lock").c_str());
  std::remove(store::ResultStore::quarantine_path_for(store).c_str());
}

Metrics sample_metrics() {
  Metrics m;
  m.arch = "C1";
  m.benchmark = "bfs";
  m.ipc = 1.25;
  m.cycles = 123456;
  m.dynamic_w = 0.5;
  m.leakage_w = 0.1;
  m.total_w = 0.6;
  m.l2_write_share = 0.4;
  m.l2_miss_rate = 0.2;
  return m;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void expect_identical(const Metrics& a, const Metrics& b) {
  EXPECT_EQ(a.arch, b.arch);
  EXPECT_EQ(a.benchmark, b.benchmark);
  EXPECT_EQ(a.ipc, b.ipc);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.dynamic_w, b.dynamic_w);
  EXPECT_EQ(a.leakage_w, b.leakage_w);
  EXPECT_EQ(a.total_w, b.total_w);
  EXPECT_EQ(a.l2_write_share, b.l2_write_share);
  EXPECT_EQ(a.l2_miss_rate, b.l2_miss_rate);
}

TEST(Runner, RunOneProducesSaneMetrics) {
  const Metrics m = run_one(Architecture::kSramBaseline, "hotspot", {.scale = kTinyScale});
  EXPECT_EQ(m.arch, "sram");
  EXPECT_EQ(m.benchmark, "hotspot");
  EXPECT_GT(m.ipc, 0.0);
  EXPECT_GT(m.cycles, 0u);
  EXPECT_GT(m.dynamic_w, 0.0);
  EXPECT_GT(m.leakage_w, 0.0);
  EXPECT_NEAR(m.total_w, m.dynamic_w + m.leakage_w, 1e-12);
  EXPECT_GE(m.l2_write_share, 0.0);
  EXPECT_LE(m.l2_write_share, 1.0);
}

TEST(Runner, DeterministicAcrossCalls) {
  const Metrics a = run_one(Architecture::kC1, "kmeans", {.scale = kTinyScale});
  const Metrics b = run_one(Architecture::kC1, "kmeans", {.scale = kTinyScale});
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
  EXPECT_DOUBLE_EQ(a.dynamic_w, b.dynamic_w);
}

TEST(Runner, CacheRoundTrip) {
  const std::string path = "test_runner_cache.csv";
  remove_cache_files(path);
  Metrics m = sample_metrics();
  m.ipc = 1.0 / 3.0;  // needs all 17 digits to round-trip exactly
  save_cache(path, 0.5, {m});
  const auto cache = load_cache(path, 0.5);
  ASSERT_EQ(cache.size(), 1u);
  expect_identical(cache.at({"C1", "bfs"}), m);
  remove_cache_files(path);
}

TEST(Runner, LoadCacheMissingFileIsEmpty) {
  EXPECT_TRUE(load_cache("nonexistent_file_xyz.csv", 0.5).empty());
}

TEST(Runner, CacheScaleMismatchIsDiscarded) {
  const std::string path = "test_runner_cache_scale.csv";
  remove_cache_files(path);
  save_cache(path, 0.5, {sample_metrics()});
  EXPECT_EQ(load_cache(path, 0.5).size(), 1u);
  EXPECT_TRUE(load_cache(path, 1.0).empty());
  EXPECT_TRUE(load_cache(path, 0.25).empty());
  remove_cache_files(path);
}

TEST(Runner, CacheConfigFingerprintMismatchIsDiscarded) {
  const std::string path = "test_runner_cache_fp.csv";
  remove_cache_files(path);
  save_cache(path, 0.5, {sample_metrics()});
  // Tamper with the recorded fingerprint: the whole file must be ignored.
  std::string text = slurp(path);
  const auto pos = text.find("config=");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 7] = text[pos + 7] == '0' ? '1' : '0';
  std::ofstream(path, std::ios::trunc) << text;
  EXPECT_TRUE(load_cache(path, 0.5).empty());
  remove_cache_files(path);
}

TEST(Runner, CacheV1FormatIsDiscardedNotMisparsed) {
  const std::string path = "test_runner_cache_v1.csv";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "arch,benchmark,ipc,cycles,dynamic_w,leakage_w,total_w,write_share,miss_rate\n"
        << "C1,bfs,1.25,123456,0.5,0.1,0.6,0.4,0.2\n";
  }
  EXPECT_TRUE(load_cache(path, 0.5).empty());
  remove_cache_files(path);
}

TEST(Runner, CacheMalformedRowsAreSkippedNotCorrupted) {
  const std::string path = "test_runner_cache_bad.csv";
  remove_cache_files(path);
  save_cache(path, 0.5, {sample_metrics()});
  {
    // Append a truncated row (the old parser would have reused the previous
    // cell for the missing fields), a non-numeric row, and an over-long row.
    std::ofstream out(path, std::ios::app);
    out << "C2,bfs,2.5,99\n"
        << "C3,bfs,not_a_number,1,2,3,4,5,6\n"
        << "C2,kmeans,1,2,3,4,5,6,7,8\n";
  }
  const auto cache = load_cache(path, 0.5);
  ASSERT_EQ(cache.size(), 1u);  // only the well-formed row survives
  expect_identical(cache.at({"C1", "bfs"}), sample_metrics());
  remove_cache_files(path);
}

TEST(Runner, SaveCacheUnwritablePathThrows) {
  EXPECT_THROW(save_cache("no_such_dir_xyz/cache.csv", 0.5, {sample_metrics()}), SimError);
}

TEST(Runner, MatrixParallelIsByteIdenticalToSequential) {
  const std::vector<Architecture> archs{Architecture::kSramBaseline, Architecture::kC1};
  const std::vector<std::string> benchmarks{"bfs", "kmeans", "hotspot"};
  const auto seq = run_matrix(archs, benchmarks, {.scale = kTinyScale, .jobs = 1});
  const auto par = run_matrix(archs, benchmarks, {.scale = kTinyScale, .jobs = 4});
  ASSERT_EQ(seq.size(), 6u);
  ASSERT_EQ(par.size(), seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) expect_identical(seq[i], par[i]);
}

TEST(Runner, MatrixPersistsWriteThroughAndResumes) {
  const std::string path = "test_runner_matrix_resume.csv";
  remove_cache_files(path);
  const std::vector<Architecture> archs{Architecture::kSramBaseline};
  const std::vector<std::string> benchmarks{"bfs", "kmeans"};
  const auto fresh = run_matrix(archs, benchmarks, {.scale = kTinyScale, .cache_path = path, .jobs = 1});
  ASSERT_EQ(fresh.size(), 2u);
  ASSERT_EQ(load_cache(path, kTinyScale).size(), 2u);

  // Drop the last cached row (as if the sweep crashed mid-matrix): the
  // rerun must reuse the surviving row and re-simulate only the missing
  // one, ending with identical results.
  std::string text = slurp(path);
  text.erase(text.rfind("sram,", text.size() - 2));
  std::ofstream(path, std::ios::trunc) << text;
  ASSERT_EQ(load_cache(path, kTinyScale).size(), 1u);

  const auto resumed = run_matrix(archs, benchmarks, {.scale = kTinyScale, .cache_path = path, .jobs = 1});
  ASSERT_EQ(resumed.size(), fresh.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) expect_identical(fresh[i], resumed[i]);
  EXPECT_EQ(load_cache(path, kTinyScale).size(), 2u);
  remove_cache_files(path);
}

TEST(Runner, MatrixUsesCachedRowsVerbatim) {
  const std::string path = "test_runner_matrix_cached.csv";
  remove_cache_files(path);
  Metrics planted = sample_metrics();
  planted.arch = "sram";
  planted.benchmark = "bfs";
  planted.ipc = 42.0;  // impossible value: proves the cache was used
  save_cache(path, kTinyScale, {planted});
  const auto rows = run_matrix({Architecture::kSramBaseline}, {std::string("bfs")},
                               {.scale = kTinyScale, .cache_path = path, .jobs = 1});
  ASSERT_EQ(rows.size(), 1u);
  expect_identical(rows[0], planted);
  remove_cache_files(path);
}

TEST(Runner, ConfigFingerprintIsStable) {
  EXPECT_EQ(config_fingerprint(), config_fingerprint());
  EXPECT_NE(config_fingerprint(), 0u);
}

TEST(Runner, ByBenchmarkFilters) {
  Metrics a, b;
  a.arch = "sram";
  a.benchmark = "bfs";
  b.arch = "C1";
  b.benchmark = "bfs";
  const auto idx = by_benchmark({a, b}, "C1");
  ASSERT_EQ(idx.size(), 1u);
  EXPECT_EQ(idx.at("bfs").arch, "C1");
}

TEST(Probe, TwoPartProbeCollectsInternals) {
  const TwoPartProbe p = run_two_part("kmeans", c1_bank_config(), kTinyScale);
  EXPECT_GT(p.counters.get("w_demand"), 0u);
  EXPECT_GE(p.lr_write_utilization, 0.0);
  EXPECT_LE(p.lr_write_utilization, 1.0);
  EXPECT_EQ(p.lr_interval_fractions.size(), 6u);
  double sum = 0.0;
  for (const double f : p.lr_interval_fractions) sum += f;
  if (p.lr_intervals > 0) {
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  EXPECT_GE(p.hr_within_40ms, 0.0);
  EXPECT_LE(p.hr_within_40ms, 1.0);
}

TEST(Probe, UniformProbeCollectsWriteVariation) {
  const UniformProbe p = run_uniform("bfs", sram_bank_config(), kTinyScale);
  EXPECT_GT(p.metrics.ipc, 0.0);
  EXPECT_GE(p.inter_set_cov, 0.0);
  EXPECT_GE(p.intra_set_cov, 0.0);
  EXPECT_GT(p.write_share, 0.0);
}

TEST(Probe, DefaultConfigsMatchArchRegistry) {
  const auto c1 = c1_bank_config();
  EXPECT_EQ(c1.hr_bytes, 224u * 1024);
  EXPECT_EQ(c1.lr_bytes, 32u * 1024);
  const auto sram = sram_bank_config();
  EXPECT_EQ(sram.capacity_bytes, 64u * 1024);
}

}  // namespace
}  // namespace sttgpu::sim
