#include "cache/cache.hpp"

#include <gtest/gtest.h>

namespace sttgpu::cache {
namespace {

CacheGeometry small_geom() { return {4 * 1024, 4, 256}; }  // 4 sets x 4 ways

SetAssocCache make_cache(WriteHitPolicy hit, WriteMissPolicy miss) {
  return SetAssocCache(small_geom(), CachePolicies{hit, miss, ReplacementKind::kLru});
}

TEST(Cache, LoadMissAllocatesAndForwards) {
  auto c = make_cache(WriteHitPolicy::kWriteBack, WriteMissPolicy::kAllocate);
  const auto out = c.access(0x1000, AccessKind::kLoad, 1);
  EXPECT_FALSE(out.hit);
  EXPECT_TRUE(out.forward_downstream);
  EXPECT_TRUE(c.contains(0x1000));
  EXPECT_EQ(c.counters().load_misses, 1u);

  const auto again = c.access(0x1000, AccessKind::kLoad, 2);
  EXPECT_TRUE(again.hit);
  EXPECT_FALSE(again.forward_downstream);
  EXPECT_EQ(c.counters().load_hits, 1u);
}

TEST(Cache, WriteBackAbsorbsStores) {
  auto c = make_cache(WriteHitPolicy::kWriteBack, WriteMissPolicy::kAllocate);
  c.access(0x2000, AccessKind::kLoad, 1);
  const auto out = c.access(0x2000, AccessKind::kStore, 2);
  EXPECT_TRUE(out.hit);
  EXPECT_FALSE(out.forward_downstream);
  // Dirty line must produce a writeback when invalidated.
  EXPECT_TRUE(c.invalidate_line(0x2000));
}

TEST(Cache, WriteThroughForwardsButKeepsLine) {
  auto c = make_cache(WriteHitPolicy::kWriteThrough, WriteMissPolicy::kAllocate);
  c.access(0x2000, AccessKind::kLoad, 1);
  const auto out = c.access(0x2000, AccessKind::kStore, 2);
  EXPECT_TRUE(out.hit);
  EXPECT_TRUE(out.forward_downstream);
  EXPECT_TRUE(c.contains(0x2000));
  EXPECT_FALSE(c.invalidate_line(0x2000));  // stayed clean
}

TEST(Cache, WriteEvictDropsLineAndForwards) {
  // The GPU L1 global-store policy of the paper's Fig. 1b.
  auto c = make_cache(WriteHitPolicy::kWriteEvict, WriteMissPolicy::kNoAllocate);
  c.access(0x3000, AccessKind::kLoad, 1);
  EXPECT_TRUE(c.contains(0x3000));
  const auto out = c.access(0x3000, AccessKind::kStore, 2);
  EXPECT_TRUE(out.hit);
  EXPECT_TRUE(out.forward_downstream);
  EXPECT_FALSE(c.contains(0x3000));  // evicted on write
}

TEST(Cache, WriteNoAllocatePassesThrough) {
  auto c = make_cache(WriteHitPolicy::kWriteEvict, WriteMissPolicy::kNoAllocate);
  const auto out = c.access(0x4000, AccessKind::kStore, 1);
  EXPECT_FALSE(out.hit);
  EXPECT_TRUE(out.forward_downstream);
  EXPECT_FALSE(c.contains(0x4000));
  EXPECT_EQ(c.counters().store_misses, 1u);
}

TEST(Cache, WriteAllocateFetchesOnWrite) {
  auto c = make_cache(WriteHitPolicy::kWriteBack, WriteMissPolicy::kAllocate);
  const auto out = c.access(0x5000, AccessKind::kStore, 1);
  EXPECT_FALSE(out.hit);
  EXPECT_TRUE(out.forward_downstream);
  EXPECT_TRUE(c.contains(0x5000));
  EXPECT_TRUE(c.invalidate_line(0x5000));  // allocated dirty
}

TEST(Cache, DirtyEvictionProducesWriteback) {
  auto c = make_cache(WriteHitPolicy::kWriteBack, WriteMissPolicy::kAllocate);
  // Fill one set (4 ways) with dirty lines; set stride = 4 sets * 256B.
  const std::uint64_t stride = 4 * 256;
  for (int i = 0; i < 4; ++i) {
    c.access(0x10000 + i * stride, AccessKind::kStore, i);
  }
  // A fifth line in the same set evicts the LRU dirty line.
  const auto out = c.access(0x10000 + 4 * stride, AccessKind::kLoad, 10);
  EXPECT_TRUE(out.evicted);
  EXPECT_TRUE(out.writeback);
  EXPECT_EQ(out.writeback_addr, 0x10000u);
  EXPECT_EQ(c.counters().writebacks, 1u);
}

TEST(Cache, CleanEvictionHasNoWriteback) {
  auto c = make_cache(WriteHitPolicy::kWriteBack, WriteMissPolicy::kAllocate);
  const std::uint64_t stride = 4 * 256;
  for (int i = 0; i < 5; ++i) c.access(0x10000 + i * stride, AccessKind::kLoad, i);
  EXPECT_EQ(c.counters().evictions, 1u);
  EXPECT_EQ(c.counters().writebacks, 0u);
}

TEST(Cache, FillLineIdempotentWhenResident) {
  auto c = make_cache(WriteHitPolicy::kWriteBack, WriteMissPolicy::kAllocate);
  c.access(0x100, AccessKind::kLoad, 1);
  const auto out = c.fill_line(0x100, 2, false);
  EXPECT_FALSE(out.evicted);
}

TEST(Cache, MissRateComputation) {
  auto c = make_cache(WriteHitPolicy::kWriteBack, WriteMissPolicy::kAllocate);
  c.access(0x100, AccessKind::kLoad, 1);  // miss
  c.access(0x100, AccessKind::kLoad, 2);  // hit
  c.access(0x100, AccessKind::kLoad, 3);  // hit
  c.access(0x100, AccessKind::kLoad, 4);  // hit
  EXPECT_DOUBLE_EQ(c.counters().miss_rate(), 0.25);
}

TEST(Cache, WriteStatsTrackStores) {
  auto c = make_cache(WriteHitPolicy::kWriteBack, WriteMissPolicy::kAllocate);
  for (int i = 0; i < 10; ++i) c.access(0x700, AccessKind::kStore, i);
  EXPECT_EQ(c.write_stats().total_writes(), 10u);
}

}  // namespace
}  // namespace sttgpu::cache
