// Direct unit tests of the SM core: issue/credit behaviour, MSHR merging,
// block refill and L1 flush — driven without the rest of the GPU via a
// capturing send function.
#include <gtest/gtest.h>

#include <map>

#include "gpu/sm.hpp"

namespace sttgpu::gpu {
namespace {

struct SentTxn {
  std::uint64_t id;
  Addr addr;
  bool is_store;
};

class SmTest : public ::testing::Test {
 protected:
  SmTest() : sm_(0, cfg_, 7) {
    send_ = [this](Addr addr, bool is_store) -> std::uint64_t {
      const std::uint64_t id = next_id_++;
      sent_.push_back({id, addr, is_store});
      return id;
    };
  }

  workload::KernelSpec loads_kernel(unsigned instr = 60) {
    workload::KernelSpec k;
    k.name = "k";
    k.grid_blocks = 4;
    k.threads_per_block = 32;  // one warp per block
    k.regs_per_thread = 8;
    k.instructions_per_warp = instr;
    k.mem_fraction = 1.0;      // every instruction is a memory op
    k.store_fraction = 0.0;    // all loads
    k.pattern.kind = workload::PatternKind::kStreaming;
    k.pattern.footprint_bytes = 1 << 20;
    k.pattern.reuse_fraction = 0.0;
    k.pattern.wws_lines = 0;
    return k;
  }

  void start(const workload::KernelSpec& k, unsigned resident) {
    std::deque<unsigned> blocks;
    for (unsigned b = 0; b < k.grid_blocks; ++b) blocks.push_back(b);
    sm_.start_kernel(k, std::move(blocks), resident,
                     static_cast<std::uint64_t>(k.grid_blocks) * k.warps_per_block(), 42);
  }

  /// Responds to every outstanding transaction.
  void respond_all() {
    std::vector<SentTxn> txns;
    txns.swap(sent_);
    for (const SentTxn& t : txns) {
      L2Response resp;
      resp.id = t.id;
      resp.addr = t.addr;
      resp.is_store = t.is_store;
      resp.sm_id = 0;
      resp.ready = now_;
      sm_.on_response(resp, now_, send_);
    }
  }

  void run_cycles(unsigned n) {
    for (unsigned i = 0; i < n; ++i) sm_.cycle(now_++, send_);
  }

  GpuConfig cfg_;
  Sm sm_;
  SendTxnFn send_;
  std::vector<SentTxn> sent_;
  std::uint64_t next_id_ = 1;
  Cycle now_ = 0;
};

TEST_F(SmTest, IssuesLoadsAndBlocksOnMisses) {
  start(loads_kernel(), /*resident=*/2);
  run_cycles(4);
  // Two warps, each issued one blocking load: two transactions, then idle.
  EXPECT_EQ(sent_.size(), 2u);
  EXPECT_FALSE(sent_[0].is_store);
  EXPECT_EQ(sm_.stats().issued_instructions, 2u);
  EXPECT_EQ(sm_.inflight(), 2u);
  const auto idle_before = sm_.stats().idle_cycles;
  run_cycles(10);
  EXPECT_GT(sm_.stats().idle_cycles, idle_before);  // everyone blocked
  EXPECT_EQ(sm_.stats().issued_instructions, 2u);
}

TEST_F(SmTest, ResponsesWakeWarps) {
  start(loads_kernel(), 2);
  run_cycles(4);
  respond_all();
  EXPECT_EQ(sm_.inflight(), 0u);
  run_cycles(cfg_.l1_hit_latency + 8);
  // Warps resumed and issued further loads.
  EXPECT_GT(sm_.stats().issued_instructions, 2u);
}

TEST_F(SmTest, RunsKernelToCompletionWithPromptMemory) {
  start(loads_kernel(30), 2);
  for (int i = 0; i < 20000 && !sm_.kernel_done(); ++i) {
    sm_.cycle(now_++, send_);
    respond_all();
  }
  EXPECT_TRUE(sm_.kernel_done());
  // 4 blocks x 1 warp x 30 instructions.
  EXPECT_EQ(sm_.stats().issued_instructions, 4u * 30u);
  EXPECT_EQ(sm_.inflight(), 0u);
}

TEST_F(SmTest, FinishedBlocksLaunchQueuedBlocks) {
  start(loads_kernel(10), /*resident=*/1);  // 4 blocks through 1 slot
  for (int i = 0; i < 20000 && !sm_.kernel_done(); ++i) {
    sm_.cycle(now_++, send_);
    respond_all();
  }
  EXPECT_TRUE(sm_.kernel_done());
  EXPECT_EQ(sm_.stats().issued_instructions, 40u);
}

TEST_F(SmTest, StoreCreditsThrottleIssue) {
  workload::KernelSpec k = loads_kernel(200);
  k.store_fraction = 1.0;  // all stores (global: every one goes to L2)
  // Keep the store probability at 1.0 in both phases (stores_at_end equal
  // to the epilogue share means no concentration).
  k.stores_at_end_fraction = k.epilogue_fraction;
  cfg_.max_outstanding_store_txn = 4;
  Sm sm(0, cfg_, 7);
  std::deque<unsigned> blocks{0};
  sm.start_kernel(k, std::move(blocks), 1, 1, 42);

  Cycle now = 0;
  for (int i = 0; i < 50; ++i) sm.cycle(now++, send_);
  // Stores are fire-and-forget but bounded by the 4 credits.
  EXPECT_LE(sent_.size(), 4u);
  EXPECT_GT(sm.stats().stall_cycles, 0u);
}

TEST_F(SmTest, MshrMergesSameLineLoads) {
  // Two warps with identical streams (same kernel, resident 2 -> different
  // warp ids, so different addresses). Force same-line loads via reuse of a
  // tiny footprint instead.
  workload::KernelSpec k = loads_kernel(40);
  k.pattern.footprint_bytes = 256;  // everything lands on two 128B lines
  start(k, 4);
  run_cycles(30);
  // 4 warps requested from at most 2 distinct lines: merges must occur.
  EXPECT_GT(sm_.stats().mshr_merges, 0u);
  EXPECT_LT(sent_.size(), 4u);
}

TEST_F(SmTest, LocalStoresStayInL1UntilFlush) {
  workload::KernelSpec k = loads_kernel(20);
  k.store_fraction = 1.0;
  k.local_fraction = 1.0;  // all local stores: write-back L1
  start(k, 1);
  for (int i = 0; i < 2000 && !sm_.kernel_done(); ++i) {
    sm_.cycle(now_++, send_);
    respond_all();
  }
  ASSERT_TRUE(sm_.kernel_done());
  const std::size_t before_flush = sent_.size();
  sm_.flush_l1(now_, send_);
  // The flush emits the dirty local lines as L2 writes.
  EXPECT_GT(sent_.size(), before_flush);
  for (std::size_t i = before_flush; i < sent_.size(); ++i) {
    EXPECT_TRUE(sent_[i].is_store);
  }
}

TEST_F(SmTest, SharedMemoryOpsNeverReachL2) {
  workload::KernelSpec k = loads_kernel(40);
  k.mem_fraction = 1.0;
  k.const_fraction = 0.0;
  k.shared_fraction = 1.0;  // all shared: intra-SM
  start(k, 2);
  for (int i = 0; i < 4000 && !sm_.kernel_done(); ++i) sm_.cycle(now_++, send_);
  EXPECT_TRUE(sm_.kernel_done());
  EXPECT_TRUE(sent_.empty());  // nothing went to the memory system
  EXPECT_GT(sm_.stats().shared_accesses, 0u);
}

TEST_F(SmTest, GtoPrefersTheLastIssuedWarp) {
  workload::KernelSpec k = loads_kernel(50);
  k.mem_fraction = 0.0;  // pure compute: no blocking
  k.compute_latency = 1;
  start(k, 2);
  // With compute latency 1 and GTO, the same warp can issue every other
  // cycle; LRR would alternate. Count consecutive-issue pairs by watching
  // instruction attribution indirectly: total instructions must advance
  // every cycle once warmed up.
  run_cycles(30);
  EXPECT_GT(sm_.stats().issued_instructions, 25u);
}

}  // namespace
}  // namespace sttgpu::gpu
