// Cross-architecture fairness invariants: the evaluation's comparisons are
// only meaningful if every architecture sees the same work and (where the
// GPU configuration is identical) the same memory demand.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/probe.hpp"
#include "sim/runner.hpp"

namespace sttgpu::sim {
namespace {

constexpr double kScale = 0.06;

gpu::RunResult run_detailed(Architecture arch, const std::string& benchmark) {
  const ArchSpec spec = make_arch(arch);
  const workload::Workload w = workload::make_benchmark(benchmark, kScale);
  gpu::RunResult r;
  (void)run_one_detailed(spec, w, r);
  return r;
}

TEST(Fairness, SameInstructionCountEverywhere) {
  const workload::Workload w = workload::make_benchmark("kmeans", kScale);
  for (const Architecture arch : all_architectures()) {
    const ArchSpec spec = make_arch(arch);
    gpu::RunResult r;
    (void)run_one_detailed(spec, w, r);
    EXPECT_EQ(r.instructions, w.total_instructions()) << to_string(arch);
  }
}

TEST(Fairness, IdenticalDemandStreamWhenOnlyTheBankDiffers) {
  // SRAM baseline and the naive STT baseline share the identical GPU model
  // (same register file, same L1s): the warp instruction streams and L1
  // behaviour are timing-independent, so the L2 must see the same demand.
  for (const char* name : {"bfs", "stencil", "nw"}) {
    const gpu::RunResult sram = run_detailed(Architecture::kSramBaseline, name);
    const gpu::RunResult stt = run_detailed(Architecture::kSttBaseline, name);
    // The per-warp instruction streams are timing-independent, so the
    // transaction counts match exactly.
    EXPECT_EQ(sram.sm.load_transactions, stt.sm.load_transactions) << name;
    EXPECT_EQ(sram.sm.store_transactions, stt.sm.store_transactions) << name;
    // L1 contents depend on the warp *interleaving* (which memory timing
    // perturbs), so hit/miss splits may drift — but only marginally.
    const double miss_drift =
        std::abs(static_cast<double>(sram.l1d_misses) - static_cast<double>(stt.l1d_misses)) /
        static_cast<double>(sram.l1d_misses);
    EXPECT_LT(miss_drift, 0.01) << name;
    const double l2_drift =
        std::abs(static_cast<double>(sram.l2.accesses()) -
                 static_cast<double>(stt.l2.accesses())) /
        static_cast<double>(sram.l2.accesses());
    EXPECT_LT(l2_drift, 0.01) << name;
  }
}

TEST(Fairness, TwoPartSeesTheSameDemandAsUniform) {
  // C1 also keeps the baseline GPU model; only the L2 organization changes,
  // so the SM-side transaction counts are identical and the L2 demand is
  // within interleaving noise.
  const gpu::RunResult sram = run_detailed(Architecture::kSramBaseline, "kmeans");
  const gpu::RunResult c1 = run_detailed(Architecture::kC1, "kmeans");
  EXPECT_EQ(sram.sm.load_transactions, c1.sm.load_transactions);
  EXPECT_EQ(sram.sm.store_transactions, c1.sm.store_transactions);
  const double drift = std::abs(static_cast<double>(sram.l2.accesses()) -
                                static_cast<double>(c1.l2.accesses())) /
                       static_cast<double>(sram.l2.accesses());
  EXPECT_LT(drift, 0.01);
}

TEST(Fairness, RegisterBoostChangesOnlyOccupancyBoundKernels) {
  // nw is not register-limited: C2's bigger register file must not change
  // its instruction stream or demand (only the smaller HR part does).
  const gpu::RunResult sram = run_detailed(Architecture::kSramBaseline, "nw");
  const gpu::RunResult c2 = run_detailed(Architecture::kC2, "nw");
  EXPECT_EQ(sram.sm.load_transactions, c2.sm.load_transactions);
  EXPECT_EQ(sram.sm.store_transactions, c2.sm.store_transactions);
}

}  // namespace
}  // namespace sttgpu::sim
