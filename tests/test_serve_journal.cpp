// Unit tests of the crash-recovery submission journal (serve/journal.hpp):
// durable record/retire round trips, compaction on reopen, torn-tail and
// corrupt-frame recovery via the store's WAL discipline, and path derivation.
#include "serve/journal.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "store/wal.hpp"

namespace sttgpu::serve {
namespace {

struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl = (std::filesystem::temp_directory_path() / "sttgpu_journal_XXXXXX");
    path = ::mkdtemp(tmpl.data());
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

TEST(ServeJournal, DerivePathMirrorsTheStore) {
  EXPECT_EQ(Journal::derive_path("fig8_cache.csv"), "fig8_cache.journal");
  EXPECT_EQ(Journal::derive_path("/tmp/x/cache.csv"), "/tmp/x/cache.journal");
  EXPECT_EQ(Journal::derive_path("oddname"), "oddname.journal");
}

TEST(ServeJournal, RecordedSubmissionsSurviveReopen) {
  const TempDir dir;
  const std::string path = dir.path + "/j.journal";
  {
    Journal j(path);
    EXPECT_TRUE(j.recovered().empty());
    EXPECT_EQ(j.max_id(), 0u);
    j.record_submission(1, R"({"archs":"C1"})");
    j.record_submission(2, R"({"archs":"C2"})");
    EXPECT_EQ(j.stats().open, 2u);
  }
  Journal j(path);
  const std::vector<Journal::Pending> pending = j.recovered();
  ASSERT_EQ(pending.size(), 2u);
  EXPECT_EQ(pending[0].id, 1u);
  EXPECT_EQ(pending[0].options_json, R"({"archs":"C1"})");
  EXPECT_EQ(pending[1].id, 2u);
  EXPECT_EQ(j.max_id(), 2u);
}

TEST(ServeJournal, DoneRetiresASubmission) {
  const TempDir dir;
  const std::string path = dir.path + "/j.journal";
  {
    Journal j(path);
    j.record_submission(5, R"({"benchmarks":"bfs"})");
    j.record_submission(6, R"({"benchmarks":"nw"})");
    j.record_done(5);
    EXPECT_EQ(j.stats().open, 1u);
  }
  Journal j(path);
  const std::vector<Journal::Pending> pending = j.recovered();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].id, 6u);
  // max_id covers retired ids too: id 5 and 6 must never be reissued.
  EXPECT_EQ(j.max_id(), 6u);
}

TEST(ServeJournal, ReopenCompactsRetiredPairsAway) {
  const TempDir dir;
  const std::string path = dir.path + "/j.journal";
  std::uintmax_t busy_size = 0;
  {
    Journal j(path);
    for (std::uint64_t id = 1; id <= 20; ++id) {
      j.record_submission(id, R"({"archs":"C1"})");
      j.record_done(id);
    }
    busy_size = std::filesystem::file_size(path);
  }
  {
    Journal j(path);  // compaction pass: all 20 pairs are dead
    EXPECT_TRUE(j.recovered().empty());
  }
  EXPECT_LT(std::filesystem::file_size(path), busy_size / 4);
}

TEST(ServeJournal, TornTailIsTruncatedAndEarlierRecordsSurvive) {
  const TempDir dir;
  const std::string path = dir.path + "/j.journal";
  {
    Journal j(path);
    j.record_submission(3, R"({"archs":"C3"})");
  }
  // Simulate a crash mid-append: a prefix of a valid frame at the tail.
  const std::string frame = store::frame_record("sub 4 {\"archs\":\"sram\"}");
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write(frame.data(), static_cast<std::streamsize>(frame.size() / 2));
  }
  Journal j(path);
  const std::vector<Journal::Pending> pending = j.recovered();
  ASSERT_EQ(pending.size(), 1u);  // the torn id-4 record is gone, id 3 intact
  EXPECT_EQ(pending[0].id, 3u);
  // The compaction rewrite dropped the torn bytes from the file itself.
  EXPECT_EQ(slurp(path).find(std::string("sram")), std::string::npos);
}

TEST(ServeJournal, CorruptFrameIsSkippedNotFatal) {
  const TempDir dir;
  const std::string path = dir.path + "/j.journal";
  {
    Journal j(path);
    j.record_submission(7, R"({"archs":"C1"})");
  }
  {
    // Flip a payload byte inside the last frame: CRC mismatch, not torn.
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-2, std::ios::end);
    f.put('~');
  }
  Journal j(path);
  EXPECT_TRUE(j.recovered().empty());  // the damaged record is dropped...
  j.record_submission(8, R"({"archs":"C2"})");  // ...and appends still work
  EXPECT_EQ(j.stats().open, 1u);
}

TEST(ServeJournal, ForeignFormatMarkerIsRejected) {
  const TempDir dir;
  const std::string path = dir.path + "/j.journal";
  {
    std::ofstream out(path, std::ios::binary);
    const std::string frame = store::frame_record("meta some-other-tool v9");
    out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  }
  EXPECT_THROW(Journal{path}, JournalError);
}

}  // namespace
}  // namespace sttgpu::serve
