// FlatU64Map (open addressing, backward-shift deletion) and RingQueue —
// the allocation-free containers under the simulator's per-transaction hot
// paths. The deletion test deliberately builds collision clusters: backward
// shift is the part a naive open-addressing implementation gets wrong.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/flat_map.hpp"
#include "common/ring_queue.hpp"

namespace sttgpu {
namespace {

TEST(FlatU64Map, InsertFindErase) {
  FlatU64Map<int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(1), nullptr);

  m[1] = 10;
  m[2] = 20;
  m[0] = 5;  // key 0 must be usable (only ~0 is reserved)
  EXPECT_EQ(m.size(), 3u);
  ASSERT_NE(m.find(1), nullptr);
  EXPECT_EQ(*m.find(1), 10);
  EXPECT_EQ(*m.find(0), 5);
  EXPECT_TRUE(m.contains(2));
  EXPECT_FALSE(m.contains(3));

  m.erase(1);
  EXPECT_EQ(m.find(1), nullptr);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(*m.find(2), 20);
}

TEST(FlatU64Map, OperatorBracketUpdatesInPlace) {
  FlatU64Map<int> m;
  m[7] = 1;
  m[7] = 2;
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(*m.find(7), 2);
}

TEST(FlatU64Map, SurvivesGrowthAndChurn) {
  // Mirrors the in-flight-transaction usage: monotonically increasing keys
  // inserted and erased in FIFO-ish order, live set forcing several rehashes.
  FlatU64Map<std::uint64_t> m;
  std::uint64_t next_key = 0;
  for (std::uint64_t round = 0; round < 2000; ++round) {
    m[next_key] = next_key * 3;
    ++next_key;
    if (round >= 500) {
      const std::uint64_t victim = next_key - 501;
      ASSERT_NE(m.find(victim), nullptr);
      EXPECT_EQ(*m.find(victim), victim * 3);
      m.erase(victim);
    }
  }
  EXPECT_EQ(m.size(), 500u);
  for (std::uint64_t k = next_key - 500; k < next_key; ++k) {
    ASSERT_NE(m.find(k), nullptr) << k;
    EXPECT_EQ(*m.find(k), k * 3);
  }
}

TEST(FlatU64Map, BackwardShiftKeepsClusterReachable) {
  // Many keys, erased front-to-back and back-to-front, with lookups after
  // every erase: any probe chain broken by deletion shows up here.
  FlatU64Map<int> m;
  constexpr int kN = 64;
  for (int i = 0; i < kN; ++i) m[static_cast<std::uint64_t>(i) << 3] = i;
  for (int i = 0; i < kN; i += 2) {
    m.erase(static_cast<std::uint64_t>(i) << 3);
    for (int j = 1; j < kN; j += 2) {
      ASSERT_NE(m.find(static_cast<std::uint64_t>(j) << 3), nullptr)
          << "lost key " << j << " after erasing " << i;
    }
  }
  EXPECT_EQ(m.size(), kN / 2u);
}

TEST(FlatU64Map, HoldsVectorValues) {
  FlatU64Map<std::vector<unsigned>> m;
  m[100].push_back(1);
  m[100].push_back(2);
  m[200].push_back(9);
  ASSERT_NE(m.find(100), nullptr);
  EXPECT_EQ(m.find(100)->size(), 2u);
  std::vector<unsigned> taken = std::move(*m.find(100));
  m.erase(100);
  EXPECT_EQ(taken, (std::vector<unsigned>{1, 2}));
  ASSERT_NE(m.find(200), nullptr);
  EXPECT_EQ(m.find(200)->at(0), 9u);
}

TEST(RingQueue, FifoAcrossWrapAround) {
  RingQueue<int> q;
  EXPECT_TRUE(q.empty());
  // Push/pop cycles longer than any power-of-two capacity force repeated
  // wrap-around of head and tail.
  int next_in = 0;
  int next_out = 0;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 7; ++i) q.push_back(next_in++);
    for (int i = 0; i < 5; ++i) {
      ASSERT_FALSE(q.empty());
      EXPECT_EQ(q.front(), next_out++);
      q.pop_front();
    }
  }
  EXPECT_EQ(q.size(), 200u);
  while (!q.empty()) {
    EXPECT_EQ(q.front(), next_out++);
    q.pop_front();
  }
  EXPECT_EQ(next_out, next_in);
}

TEST(RingQueue, GrowPreservesOrderMidWrap) {
  RingQueue<std::string> q;
  for (int i = 0; i < 6; ++i) q.push_back("x" + std::to_string(i));
  for (int i = 0; i < 6; ++i) q.pop_front();
  // Head is now mid-buffer; filling past capacity forces a grow that must
  // relinearize the wrapped contents.
  for (int i = 0; i < 40; ++i) q.push_back("y" + std::to_string(i));
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(q.front(), "y" + std::to_string(i));
    q.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace sttgpu
