// Miniature versions of the paper's figure claims, run at tiny scale so
// they hold in CI time: the qualitative shapes the full bench binaries
// reproduce at evaluation scale.
#include <gtest/gtest.h>

#include "sim/probe.hpp"
#include "sim/runner.hpp"

namespace sttgpu::sim {
namespace {

constexpr double kScale = 0.12;

TEST(FigureShapes, Fig3HotWritersBeatEvenWriters) {
  // histo hammers a tiny histogram (hot sets); stencil sweeps writes evenly.
  const UniformProbe hot = run_uniform("histo", sram_bank_config(), kScale);
  const UniformProbe even = run_uniform("stencil", sram_bank_config(), kScale);
  EXPECT_GT(hot.inter_set_cov, 1.5 * even.inter_set_cov);
}

TEST(FigureShapes, Fig4LowerThresholdRaisesLrShare) {
  sttl2::TwoPartBankConfig th1 = c1_bank_config();
  sttl2::TwoPartBankConfig th7 = c1_bank_config();
  th7.write_threshold = 7;
  const TwoPartProbe p1 = run_two_part("kmeans", th1, kScale);
  const TwoPartProbe p7 = run_two_part("kmeans", th7, kScale);
  EXPECT_GT(p1.lr_write_utilization, p7.lr_write_utilization);
  // ... with no meaningful total-write overhead for TH1.
  const double w1 = static_cast<double>(p1.counters.get("lr_phys_writes") +
                                        p1.counters.get("hr_phys_writes"));
  const double w7 = static_cast<double>(p7.counters.get("lr_phys_writes") +
                                        p7.counters.get("hr_phys_writes"));
  EXPECT_LT(w1 / w7, 1.25);
}

TEST(FigureShapes, Fig5AssociativityHelpsUtilization) {
  sttl2::TwoPartBankConfig direct = c1_bank_config();
  direct.lr_assoc = 1;
  sttl2::TwoPartBankConfig full = c1_bank_config();
  full.lr_assoc = 0;
  const TwoPartProbe p1 = run_two_part("bfs", direct, kScale);
  const TwoPartProbe pf = run_two_part("bfs", full, kScale);
  EXPECT_GE(pf.lr_write_utilization, p1.lr_write_utilization);
}

TEST(FigureShapes, Fig6RewritesAreFast) {
  // The LR part's rewrite intervals concentrate at the fast end (<=100us
  // buckets dominate) for a hot-write benchmark.
  const TwoPartProbe p = run_two_part("kmeans", c1_bank_config(), kScale);
  ASSERT_GT(p.lr_intervals, 0u);
  const double fast =
      p.lr_interval_fractions[0] + p.lr_interval_fractions[1] + p.lr_interval_fractions[2];
  EXPECT_GT(fast, 0.5);
}

TEST(FigureShapes, Fig8aCacheFriendlyGainsFromC1) {
  const Metrics sram = run_one(Architecture::kSramBaseline, "kmeans", {.scale = kScale});
  const Metrics c1 = run_one(Architecture::kC1, "kmeans", {.scale = kScale});
  EXPECT_GT(c1.ipc / sram.ipc, 1.1);
}

TEST(FigureShapes, Fig8aSttBaselineCollapsesOnWriteHeavyStreams) {
  const Metrics sram = run_one(Architecture::kSramBaseline, "histo", {.scale = kScale});
  const Metrics stt = run_one(Architecture::kSttBaseline, "histo", {.scale = kScale});
  const Metrics c1 = run_one(Architecture::kC1, "histo", {.scale = kScale});
  EXPECT_LT(stt.ipc / sram.ipc, 0.9);        // the naive baseline regresses
  EXPECT_GT(c1.ipc / stt.ipc, 1.2);          // the two-part design recovers it
}

TEST(FigureShapes, Fig8cTotalPowerDropsForTwoPartConfigs) {
  const Metrics sram = run_one(Architecture::kSramBaseline, "sad", {.scale = kScale});
  const Metrics c2 = run_one(Architecture::kC2, "sad", {.scale = kScale});
  EXPECT_LT(c2.total_w, sram.total_w);
  // ... because the SRAM baseline is leakage-dominated:
  EXPECT_GT(sram.leakage_w, sram.dynamic_w * 0.5);
  EXPECT_LT(c2.leakage_w, 0.2 * sram.leakage_w);
}

TEST(FigureShapes, Fig8bDynamicPowerRisesForStt) {
  const Metrics sram = run_one(Architecture::kSramBaseline, "lbm", {.scale = kScale});
  const Metrics stt = run_one(Architecture::kSttBaseline, "lbm", {.scale = kScale});
  EXPECT_GT(stt.dynamic_w, sram.dynamic_w);
}

}  // namespace
}  // namespace sttgpu::sim
