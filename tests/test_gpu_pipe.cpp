#include "gpu/pipe.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace sttgpu::gpu {
namespace {

TEST(Pipe, RejectsZeroGap) { EXPECT_THROW(ThroughputPipe(1, 0), SimError); }

TEST(Pipe, IdlePipeAddsLatencyOnly) {
  ThroughputPipe pipe(10, 2);
  EXPECT_EQ(pipe.admit(100), 110u);
}

TEST(Pipe, BackToBackRespectsServiceGap) {
  ThroughputPipe pipe(10, 4);
  EXPECT_EQ(pipe.admit(0), 10u);   // starts at 0
  EXPECT_EQ(pipe.admit(0), 14u);   // starts at 4
  EXPECT_EQ(pipe.admit(0), 18u);   // starts at 8
  EXPECT_EQ(pipe.backlog(0), 12u);
}

TEST(Pipe, LateArrivalsSeeNoQueue) {
  ThroughputPipe pipe(5, 3);
  pipe.admit(0);
  EXPECT_EQ(pipe.admit(100), 105u);
  EXPECT_EQ(pipe.backlog(200), 0u);
}

TEST(Pipe, PeekDoesNotMutate) {
  ThroughputPipe pipe(5, 3);
  const Cycle p1 = pipe.peek_departure(0);
  const Cycle p2 = pipe.peek_departure(0);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(pipe.admit(0), p1);
  EXPECT_EQ(pipe.admitted(), 1u);
}

TEST(Pipe, DeparturesMonotoneUnderRandomArrivals) {
  // Property the interconnect FIFOs rely on.
  ThroughputPipe pipe(8, 2);
  Rng rng(9);
  Cycle now = 0, last_depart = 0;
  for (int i = 0; i < 10000; ++i) {
    now += rng.next_below(5);
    const Cycle depart = pipe.admit(now);
    EXPECT_GE(depart, last_depart);
    EXPECT_GE(depart, now + 8);
    last_depart = depart;
  }
}

TEST(Pipe, SustainedThroughputMatchesGap) {
  ThroughputPipe pipe(20, 5);
  Cycle last = 0;
  for (int i = 0; i < 100; ++i) last = pipe.admit(0);
  // 100 transactions at 1 per 5 cycles: the last starts at 495.
  EXPECT_EQ(last, 495u + 20u);
}

}  // namespace
}  // namespace sttgpu::gpu
