#include "sim/arch.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace sttgpu::sim {
namespace {

TEST(Arch, AllArchitecturesListed) {
  EXPECT_EQ(all_architectures().size(), 5u);
}

TEST(Arch, FromStringRoundTrip) {
  for (const Architecture a : all_architectures()) {
    EXPECT_EQ(architecture_from_string(to_string(a)), a);
  }
  EXPECT_THROW(architecture_from_string("bogus"), SimError);
}

TEST(Arch, SramBaselineMatchesTable2) {
  const ArchSpec s = make_arch(Architecture::kSramBaseline);
  EXPECT_FALSE(s.two_part);
  EXPECT_EQ(s.l2_total_bytes(), 384u * 1024);
  EXPECT_EQ(s.uniform.associativity, 8u);
  EXPECT_EQ(s.uniform.line_bytes, 256u);
  EXPECT_EQ(s.gpu.registers_per_sm, 32768u);
  EXPECT_EQ(s.uniform.cell.name, "sram-6t");
}

TEST(Arch, SttBaselineIsFourXTenYear) {
  const ArchSpec s = make_arch(Architecture::kSttBaseline);
  EXPECT_FALSE(s.two_part);
  EXPECT_EQ(s.l2_total_bytes(), 1536u * 1024);
  EXPECT_NE(s.uniform.cell.name.find("10-year"), std::string::npos);
  EXPECT_EQ(s.gpu.registers_per_sm, 32768u);
}

TEST(Arch, C1MatchesTable2Split) {
  const ArchSpec s = make_arch(Architecture::kC1);
  ASSERT_TRUE(s.two_part);
  EXPECT_EQ(s.two_part_cfg.hr_bytes * s.gpu.num_l2_banks, 1344u * 1024);
  EXPECT_EQ(s.two_part_cfg.lr_bytes * s.gpu.num_l2_banks, 192u * 1024);
  EXPECT_EQ(s.two_part_cfg.hr_assoc, 7u);
  EXPECT_EQ(s.two_part_cfg.lr_assoc, 2u);
  EXPECT_EQ(s.gpu.registers_per_sm, 32768u);  // no register boost in C1
}

TEST(Arch, C2C3SplitsAndRegisterBoosts) {
  const ArchSpec c2 = make_arch(Architecture::kC2);
  EXPECT_EQ(c2.l2_total_bytes(), 384u * 1024);
  EXPECT_EQ(c2.two_part_cfg.hr_bytes * c2.gpu.num_l2_banks, 336u * 1024);
  EXPECT_EQ(c2.two_part_cfg.lr_bytes * c2.gpu.num_l2_banks, 48u * 1024);
  EXPECT_GT(c2.extra_regs_per_sm, 0u);
  EXPECT_EQ(c2.extra_regs_per_sm % 64, 0u);  // allocation granularity
  EXPECT_EQ(c2.gpu.registers_per_sm, 32768u + c2.extra_regs_per_sm);

  const ArchSpec c3 = make_arch(Architecture::kC3);
  EXPECT_EQ(c3.l2_total_bytes(), 768u * 1024);
  // C3 trades half the saved area for cache, so its boost is smaller.
  EXPECT_GT(c3.extra_regs_per_sm, 0u);
  EXPECT_LT(c3.extra_regs_per_sm, c2.extra_regs_per_sm);
}

TEST(Arch, EqualAreaRuleHolds) {
  // The paper's fairness rule: L2 data area + register-file delta is the
  // same for every configuration.
  const MilliMeter2 budget = make_arch(Architecture::kSramBaseline).l2_data_area_mm2;
  for (const Architecture a : all_architectures()) {
    const ArchSpec s = make_arch(a);
    // Register conversion floors to the 64-register granularity, so the
    // spent area can undershoot the budget slightly but never exceed it.
    const MilliMeter2 spent =
        s.l2_data_area_mm2 + power::register_file_area_mm2(
                                 static_cast<std::uint64_t>(s.extra_regs_per_sm) *
                                 s.gpu.num_sms);
    EXPECT_LE(spent, budget * 1.0001) << s.name;
    EXPECT_GE(spent, budget * 0.98) << s.name;
  }
}

TEST(Arch, TwoPartRetentionsFollowTable1) {
  const ArchSpec s = make_arch(Architecture::kC1);
  EXPECT_NEAR(s.two_part_cfg.hr_retention_s, 40e-3, 1e-9);
  EXPECT_NEAR(s.two_part_cfg.lr_retention_s, 26.5e-6, 1e-12);
  EXPECT_EQ(s.two_part_cfg.lr_counter_bits, 4u);
  EXPECT_EQ(s.two_part_cfg.hr_counter_bits, 2u);
  EXPECT_EQ(s.two_part_cfg.write_threshold, 1u);
  EXPECT_EQ(s.two_part_cfg.buffer_lines, 10u);
}

TEST(Arch, BankGeometriesDivideEvenly) {
  for (const Architecture a : all_architectures()) {
    const ArchSpec s = make_arch(a);
    if (s.two_part) {
      EXPECT_EQ(s.two_part_cfg.hr_bytes % (s.two_part_cfg.line_bytes * s.two_part_cfg.hr_assoc),
                0u)
          << s.name;
      EXPECT_EQ(s.two_part_cfg.lr_bytes % (s.two_part_cfg.line_bytes * s.two_part_cfg.lr_assoc),
                0u)
          << s.name;
    } else {
      EXPECT_EQ(s.uniform.capacity_bytes % (s.uniform.line_bytes * s.uniform.associativity),
                0u)
          << s.name;
    }
  }
}

}  // namespace
}  // namespace sttgpu::sim
