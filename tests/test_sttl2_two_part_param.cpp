// Parameterized configuration sweep of the two-part bank: the structural
// invariants must hold for every combination of search policy, threshold,
// LR associativity and buffer size.
#include <gtest/gtest.h>

#include "bank_harness.hpp"
#include "common/rng.hpp"

namespace sttgpu::sttl2 {
namespace {

using Harness = sttgpu::testing::TwoPartHarness;

struct ParamCase {
  SearchPolicy search;
  unsigned threshold;
  unsigned lr_assoc;  // 0 = fully associative
  unsigned buffer_lines;
};

std::string case_name(const ::testing::TestParamInfo<ParamCase>& info) {
  const ParamCase& p = info.param;
  return std::string(to_string(p.search)) + "_th" + std::to_string(p.threshold) + "_a" +
         std::to_string(p.lr_assoc) + "_b" + std::to_string(p.buffer_lines);
}

class TwoPartSweep : public ::testing::TestWithParam<ParamCase> {
 protected:
  TwoPartBankConfig config() const {
    TwoPartBankConfig c;
    c.hr_bytes = 14 * 1024;
    c.lr_bytes = 2 * 1024;
    c.search = GetParam().search;
    c.write_threshold = GetParam().threshold;
    c.lr_assoc = GetParam().lr_assoc;
    c.buffer_lines = GetParam().buffer_lines;
    return c;
  }
};

TEST_P(TwoPartSweep, InvariantsHoldUnderRandomTraffic) {
  Harness h(config());
  Rng rng(42);
  std::uint64_t sent = 0;
  for (int burst = 0; burst < 150; ++burst) {
    for (int i = 0; i < 3; ++i) {
      h.send(rng.next_below(56) * 256, rng.chance(0.5));
      ++sent;
    }
    h.run(25);
  }
  h.drain();

  // 1. Every request got exactly one response.
  EXPECT_EQ(h.responses().size(), sent);

  // 2. Single residency: no line in both parts.
  for (Addr a = 0; a < 56 * 256; a += 256) {
    EXPECT_FALSE(h.bank().lr_tags().probe(a).has_value() &&
                 h.bank().hr_tags().probe(a).has_value())
        << "line " << std::hex << a;
  }

  // 3. Demand-store accounting balances.
  const auto& c = h.bank().counters();
  EXPECT_EQ(c.get("w_demand"), c.get("w_lr") + c.get("w_hr"));

  // 4. Stats identities.
  const auto& s = h.bank().stats();
  EXPECT_EQ(s.accesses(), sent);
  EXPECT_EQ(s.writes(), c.get("w_demand"));

  // 5. The bank quiesced cleanly.
  EXPECT_TRUE(h.bank().idle());

  // 6. Energy strictly positive and wear consistent with physical writes.
  EXPECT_GT(h.bank().energy().total_pj(), 0.0);
  EXPECT_EQ(h.bank().lr_wear().total_writes(), c.get("lr_phys_writes"));
  EXPECT_EQ(h.bank().hr_wear().total_writes(), c.get("hr_phys_writes"));
}

TEST_P(TwoPartSweep, DeterministicReplay) {
  const auto run_once = [&] {
    Harness h(config());
    Rng rng(7);
    for (int i = 0; i < 200; ++i) {
      h.send(rng.next_below(48) * 256, rng.chance(0.4));
      h.run(11);
    }
    h.drain();
    return std::tuple{h.now(), h.bank().stats().read_hits, h.bank().stats().write_hits,
                      h.bank().energy().total_pj()};
  };
  EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, TwoPartSweep,
    ::testing::Values(ParamCase{SearchPolicy::kSequential, 1, 2, 10},
                      ParamCase{SearchPolicy::kParallel, 1, 2, 10},
                      ParamCase{SearchPolicy::kSequential, 3, 2, 10},
                      ParamCase{SearchPolicy::kSequential, 7, 2, 10},
                      ParamCase{SearchPolicy::kSequential, 1, 1, 10},
                      ParamCase{SearchPolicy::kSequential, 1, 4, 10},
                      ParamCase{SearchPolicy::kSequential, 1, 0, 10},
                      ParamCase{SearchPolicy::kSequential, 1, 2, 1},
                      ParamCase{SearchPolicy::kSequential, 1, 2, 2},
                      ParamCase{SearchPolicy::kParallel, 3, 0, 2}),
    case_name);

}  // namespace
}  // namespace sttgpu::sttl2
