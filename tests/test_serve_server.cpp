// In-process integration tests of the sweep service: a real SweepServer on
// a temp unix socket, driven through the real Client. Covers the PR's
// acceptance criteria: a resubmission is a pure store hit (zero simulated
// cycles), concurrent overlapping submissions simulate each unique config
// exactly once, and a row fetched through the service prints byte-identically
// to the direct in-process run.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "sim/knobs.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "store/record.hpp"

namespace sttgpu::serve {
namespace {

struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl = (std::filesystem::temp_directory_path() / "sttgpu_serve_XXXXXX");
    path = ::mkdtemp(tmpl.data());
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

/// One running server + the request plumbing the tests share.
class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerOptions so;
    so.socket_path = dir_.path + "/s.sock";
    so.cache_path = dir_.path + "/c.csv";
    so.jobs = 2;
    server_ = std::make_unique<SweepServer>(std::move(so));
    server_->start();
  }

  void TearDown() override { server_->stop(); }

  Client connect() { return Client::connect(server_->socket_path()); }

  static std::string submit_request(const std::string& archs,
                                    const std::string& benchmarks) {
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    w.key("protocol_version").value(kProtocolVersion);
    w.key("verb").value("submit");
    w.key("options").begin_object();
    w.key("archs").value(archs);
    w.key("benchmarks").value(benchmarks);
    w.key("scale").value("0.05");
    w.end_object();
    w.end_object();
    return os.str();
  }

  static std::string id_request(const std::string& verb, std::int64_t id) {
    std::ostringstream os;
    JsonWriter w(os);
    w.begin_object();
    w.key("protocol_version").value(kProtocolVersion);
    w.key("verb").value(verb);
    w.key("id").value(id);
    w.end_object();
    return os.str();
  }

  /// Submits and blocks (via watch) until the submission is terminal.
  JsonValue submit_and_wait(const std::string& archs, const std::string& benchmarks) {
    const JsonValue resp = connect().request(submit_request(archs, benchmarks));
    return connect().stream(id_request("watch", resp.at("id").as_int()),
                            [](const std::string&, const JsonValue&) {});
  }

  TempDir dir_;
  std::unique_ptr<SweepServer> server_;
};

TEST_F(ServeTest, ResubmissionIsAPureStoreHit) {
  const JsonValue first = connect().request(submit_request("C1", "bfs"));
  EXPECT_EQ(first.at("scheduled").as_int(), 1);
  EXPECT_EQ(first.at("hits").as_int(), 0);
  connect().stream(id_request("watch", first.at("id").as_int()),
                   [](const std::string&, const JsonValue&) {});
  ASSERT_EQ(server_->stats().tasks_simulated, 1u);

  // The second submission must not touch a worker: all hits, nothing
  // scheduled, the simulation counter frozen.
  const JsonValue second = connect().request(submit_request("C1", "bfs"));
  EXPECT_EQ(second.at("hits").as_int(), 1);
  EXPECT_EQ(second.at("scheduled").as_int(), 0);
  EXPECT_EQ(second.at("attached").as_int(), 0);
  EXPECT_EQ(server_->stats().tasks_simulated, 1u);

  // A pure-hit submission is terminal immediately; its result is served
  // from the store.
  const JsonValue status =
      connect().request(id_request("status", second.at("id").as_int()));
  EXPECT_EQ(status.at("state").as_string(), "complete");
  const JsonValue result =
      connect().request(id_request("result", second.at("id").as_int()));
  EXPECT_EQ(result.at("rows").size(), 1u);
  EXPECT_EQ(result.at("missing").size(), 0u);
}

TEST_F(ServeTest, ConcurrentOverlappingSubmissionsSimulateEachConfigOnce) {
  // Two clients race the same 2-config slice; between the store check and
  // the in-flight attach, each unique (arch, benchmark) may simulate once
  // and only once.
  std::vector<JsonValue> finals(2);
  std::thread a([&] { finals[0] = submit_and_wait("C1,C2", "bfs"); });
  std::thread b([&] { finals[1] = submit_and_wait("C1,C2", "bfs"); });
  a.join();
  b.join();

  for (const JsonValue& f : finals) {
    EXPECT_EQ(f.at("state").as_string(), "complete");
    EXPECT_EQ(f.at("total").as_int(), 2);
    EXPECT_EQ(f.at("failed").as_int(), 0);
  }
  const ServerStats s = server_->stats();
  EXPECT_EQ(s.tasks_simulated, 2u);  // C1/bfs and C2/bfs, once each
  EXPECT_EQ(s.store_hits + s.attached, 2u);  // the other client's two entries
}

TEST_F(ServeTest, ResultByKeyIsByteIdenticalToDirectRun) {
  submit_and_wait("C1", "bfs");

  std::ostringstream req;
  JsonWriter w(req);
  w.begin_object();
  w.key("protocol_version").value(kProtocolVersion);
  w.key("verb").value("result");
  w.key("options").begin_object();
  w.key("arch").value("C1");
  w.key("benchmark").value("bfs");
  w.key("scale").value("0.05");
  w.end_object();
  w.end_object();
  const JsonValue resp = connect().request(req.str());
  ASSERT_EQ(resp.at("rows").size(), 1u);
  const auto rec = store::decode_put(resp.at("rows").at(0).as_string());
  ASSERT_TRUE(rec.has_value());

  std::ostringstream via_serve;
  sim::print_metrics_block(via_serve, sim::from_store_row(rec->row), 0.05);

  sim::RunOptions direct_opts;
  direct_opts.scale = 0.05;
  const sim::Metrics direct =
      sim::run_one(sim::architecture_from_string("C1"), "bfs", direct_opts);
  std::ostringstream direct_out;
  sim::print_metrics_block(direct_out, direct, 0.05);

  EXPECT_EQ(via_serve.str(), direct_out.str());
}

TEST_F(ServeTest, RejectsProtocolMismatchAndUnknownKnobs) {
  EXPECT_THROW(
      connect().request(R"({"protocol_version":99,"verb":"status","id":0})"),
      ProtocolMismatch);
  try {
    connect().request(
        R"({"protocol_version":1,"verb":"submit","options":{"scail":0.5}})");
    FAIL() << "expected SimError";
  } catch (const ProtocolMismatch&) {
    FAIL() << "a bad knob is a normal error, not a protocol mismatch";
  } catch (const SimError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("scail"), std::string::npos);
    EXPECT_NE(msg.find("scale"), std::string::npos);  // lists valid knobs
  }
}

TEST_F(ServeTest, SecondServerOnTheSameSocketFailsToBind) {
  ServerOptions so;
  so.socket_path = server_->socket_path();
  so.cache_path = dir_.path + "/other.csv";
  EXPECT_THROW(SweepServer{std::move(so)}, BindError);
}

TEST_F(ServeTest, CancelStopsAPendingSubmission) {
  // Occupy both workers with a larger slice, then cancel a queued one.
  const JsonValue busy = connect().request(submit_request("C1,C2,C3", "bfs"));
  const JsonValue victim = connect().request(submit_request("sram", "nw"));
  const JsonValue cancelled =
      connect().request(id_request("cancel", victim.at("id").as_int()));
  EXPECT_EQ(cancelled.at("state").as_string(), "cancelled");
  // The cancelled submission is terminal; watch returns immediately.
  const JsonValue final_event =
      connect().stream(id_request("watch", victim.at("id").as_int()),
                       [](const std::string&, const JsonValue&) {});
  EXPECT_EQ(final_event.at("state").as_string(), "cancelled");
  // The busy submission is unaffected.
  const JsonValue busy_final =
      connect().stream(id_request("watch", busy.at("id").as_int()),
                       [](const std::string&, const JsonValue&) {});
  EXPECT_EQ(busy_final.at("state").as_string(), "complete");
  EXPECT_EQ(busy_final.at("failed").as_int(), 0);
}

}  // namespace
}  // namespace sttgpu::serve
