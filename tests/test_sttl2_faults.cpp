// Fault-injection subsystem tests: the FaultModel's statistics (including
// the injected-vs-analytic cross-validation the subsystem exists for), the
// banks' recovery paths (ECC correct/detect, clean re-fetch, data loss,
// write-verify retries), byte-identity with faults disabled, and the cache
// fingerprint separation of fault runs from baseline runs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>

#include "bank_harness.hpp"
#include "nvm/cell.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "sttl2/fault_model.hpp"
#include "sttl2/reliability.hpp"

namespace sttgpu::sttl2 {
namespace {

// 1 GHz: one cycle == 1 ns, so cycle counts below read directly as ns.
const Clock kGHz{1e9};

FaultInjectionConfig enabled_cfg() {
  FaultInjectionConfig f;
  f.enabled = true;
  return f;
}

TEST(FaultModel, SramRetentionForcesDisabled) {
  FaultModel m(enabled_cfg(), /*retention_s=*/0.0, kGHz, /*salt=*/0);
  EXPECT_FALSE(m.enabled());
}

TEST(FaultModel, ZeroLengthIntervalIsNotATrial) {
  FaultModel m(enabled_cfg(), 1e-4, kGHz, 0);
  EXPECT_EQ(m.sample_collapse(500, 500), FaultModel::Collapse::kNone);
  EXPECT_EQ(m.sample_collapse(500, 400), FaultModel::Collapse::kNone);
  EXPECT_EQ(m.trials(), 0u);
  EXPECT_EQ(m.expected_collapses(), 0.0);
}

TEST(FaultModel, IntervalStartTracksWriteThenLastCheck) {
  cache::LineMeta line;
  line.insert_cycle = 100;
  EXPECT_EQ(fault_interval_start(line, 1000), 100u);  // only the install
  line.last_write_cycle = 400;
  EXPECT_EQ(fault_interval_start(line, 1000), 400u);
  line.retention_deadline = 5000;  // refreshed at 4000 with retention 1000
  EXPECT_EQ(fault_interval_start(line, 1000), 4000u);
  line.fault_check_cycle = 4500;  // already evaluated up to 4500
  EXPECT_EQ(fault_interval_start(line, 1000), 4500u);
  line.fault_check_cycle = 3000;  // stale check from before the refresh
  EXPECT_EQ(fault_interval_start(line, 1000), 4000u);
}

TEST(FaultModel, AccelZeroTurnsOffRetentionCollapse) {
  FaultInjectionConfig f = enabled_cfg();
  f.accel = 0.0;
  FaultModel m(f, 1e-4, kGHz, 0);
  EXPECT_EQ(m.collapse_probability(0, 1'000'000'000), 0.0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(m.sample_collapse(0, 1'000'000), FaultModel::Collapse::kNone);
  }
  EXPECT_EQ(m.trials(), 1000u);
  EXPECT_EQ(m.collapses(), 0u);
}

// The tentpole cross-validation: drive the injector over a wide spread of
// lifetimes and check that (a) the injected collapse count converges to the
// exact analytic expectation and (b) analyze_reliability — re-scoring the
// injector's own lifetime histogram with the effective (accelerated) spec
// margin — predicts the same number. Tolerance 10% per the subsystem's
// acceptance criterion; at 20k trials the statistical noise alone is ~2%.
TEST(FaultModel, InjectedCollapsesConvergeToAnalyticPrediction) {
  FaultInjectionConfig f = enabled_cfg();
  f.accel = 20.0;        // effective_spec_margin == 1 (analyze's minimum)
  f.spec_margin = 20.0;
  FaultModel m(f, /*retention_s=*/1e-4, kGHz, /*salt=*/7);

  // Lifetimes 5e3 .. 3.02e5 cycles against a 1e5-cycle hazard constant:
  // per-trial p spans ~0.05 .. 0.95.
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    m.sample_collapse(0, 5000 + static_cast<Cycle>(i % 100) * 3000);
  }
  ASSERT_EQ(m.trials(), static_cast<std::uint64_t>(kTrials));
  const double injected = static_cast<double>(m.collapses());
  const double expected = m.expected_collapses();
  ASSERT_GT(expected, 1000.0);

  EXPECT_LT(std::abs(injected - expected) / expected, 0.10);

  const ReliabilityReport r =
      analyze_reliability(m.lifetimes_ns(), m.retention_s(), /*refresh_period_s=*/0.0,
                          m.overflow_lifetime_ns(), m.effective_spec_margin());
  EXPECT_EQ(r.lifetimes, m.trials());
  EXPECT_LT(std::abs(r.expected_failures - expected) / expected, 0.05);
  EXPECT_LT(std::abs(injected - r.expected_failures) / r.expected_failures, 0.10);
}

TEST(FaultModel, CollapseSeverityFollowsPoissonSplit) {
  FaultInjectionConfig f = enabled_cfg();
  f.accel = 20.0;
  FaultModel m(f, 1e-4, kGHz, 3);

  // Short lifetimes (p ~ 0.05): a collapsed line almost always has exactly
  // one bad bit — the SECDED-correctable case.
  unsigned single = 0, multi = 0;
  for (int i = 0; i < 20000; ++i) {
    switch (m.sample_collapse(0, 5130)) {
      case FaultModel::Collapse::kSingleBit: ++single; break;
      case FaultModel::Collapse::kMultiBit: ++multi; break;
      default: break;
    }
  }
  ASSERT_GT(single + multi, 500u);
  EXPECT_GT(static_cast<double>(single), 0.9 * (single + multi));

  // Long lifetimes (p ~ 0.999): many bits decayed — SECDED can only detect.
  FaultModel m2(f, 1e-4, kGHz, 4);
  single = multi = 0;
  for (int i = 0; i < 2000; ++i) {
    switch (m2.sample_collapse(0, 700'000)) {
      case FaultModel::Collapse::kSingleBit: ++single; break;
      case FaultModel::Collapse::kMultiBit: ++multi; break;
      default: break;
    }
  }
  ASSERT_GT(single + multi, 1000u);
  EXPECT_GT(static_cast<double>(multi), 0.9 * (single + multi));
}

TEST(FaultModel, WriteVerifyRetriesThenEscalates) {
  FaultInjectionConfig f = enabled_cfg();
  f.write_fail_prob = 1.0;  // every pulse fails verification
  f.write_retry_limit = 3;
  f.accel = 0.0;  // accel < 1 must never weaken the write-failure rate
  FaultModel m(f, 1e-4, kGHz, 0);
  const FaultModel::WriteVerify wv = m.run_write_verify();
  EXPECT_EQ(wv.retries, 3u);
  EXPECT_TRUE(wv.escalated);

  f.write_fail_prob = 0.0;
  FaultModel ok(f, 1e-4, kGHz, 0);
  const FaultModel::WriteVerify none = ok.run_write_verify();
  EXPECT_EQ(none.retries, 0u);
  EXPECT_FALSE(none.escalated);
}

// ---- bank-level recovery paths (uniform STT bank, 26.5us cells) ----

UniformBankConfig volatile_stt_cfg() {
  UniformBankConfig c;
  c.capacity_bytes = 16 * 1024;
  c.cell = nvm::stt_cell(nvm::RetentionClass::kUs26);  // 18550 cycles
  return c;
}

using UniformHarness = sttgpu::testing::UniformHarness;

TEST(UniformBankFaults, CleanCollapseRefetchesTransparently) {
  UniformBankConfig cfg = volatile_stt_cfg();
  cfg.faults = enabled_cfg();
  cfg.faults.accel = 1000.0;  // certain multi-bit collapse over ~10k cycles
  cfg.faults.write_fail_prob = 0.0;
  UniformHarness h(cfg);
  h.send(0x100, /*is_store=*/false);
  h.drain();
  ASSERT_EQ(h.dram().reads(), 1u);
  h.run(10000);  // let the clean line decay (still before its 18550 expiry)
  const auto id = h.send(0x100, false);
  h.drain();
  // The hit observed collapsed data, dropped the line and transparently
  // re-fetched: the request still completes, via a second DRAM read.
  EXPECT_TRUE(h.responded(id));
  EXPECT_EQ(h.bank().counters().get("fault_clean_refetch"), 1u);
  EXPECT_EQ(h.bank().counters().get("fault_data_loss"), 0u);
  EXPECT_EQ(h.dram().reads(), 2u);
}

TEST(UniformBankFaults, DirtyCollapseWithoutEccIsDataLoss) {
  UniformBankConfig cfg = volatile_stt_cfg();
  cfg.faults = enabled_cfg();
  cfg.faults.accel = 1000.0;
  cfg.faults.write_fail_prob = 0.0;
  cfg.faults.ecc = false;
  UniformHarness h(cfg);
  h.send(0x100, /*is_store=*/true);  // dirty line
  h.drain();
  h.run(10000);
  const auto id = h.send(0x100, false);
  h.drain();
  EXPECT_TRUE(h.responded(id));
  EXPECT_EQ(h.bank().counters().get("fault_data_loss"), 1u);
  EXPECT_EQ(h.bank().counters().get("fault_ecc_detected"), 0u);  // no ECC
}

TEST(UniformBankFaults, DirtyCollapseWithEccIsDetected) {
  UniformBankConfig cfg = volatile_stt_cfg();
  cfg.faults = enabled_cfg();
  cfg.faults.accel = 1000.0;
  cfg.faults.write_fail_prob = 0.0;
  UniformHarness h(cfg);
  h.send(0x100, /*is_store=*/true);
  h.drain();
  h.run(10000);
  h.send(0x100, false);
  h.drain();
  // Multi-bit (the 1000x hazard makes lambda huge): SECDED detects but
  // cannot correct, so the dirty data is still lost — and counted.
  EXPECT_EQ(h.bank().counters().get("fault_ecc_detected"), 1u);
  EXPECT_EQ(h.bank().counters().get("fault_data_loss"), 1u);
}

TEST(UniformBankFaults, EccCorrectsSingleBitCollapsesAndScrubs) {
  UniformBankConfig cfg = volatile_stt_cfg();
  cfg.faults = enabled_cfg();
  cfg.faults.accel = 30.0;  // p ~ 0.1 per 2k-cycle interval: single-bit regime
  cfg.faults.write_fail_prob = 0.0;
  UniformHarness h(cfg);
  h.send(0x100, false);
  h.drain();
  for (int i = 0; i < 200; ++i) {
    h.run(2000);
    h.send(0x100, false);
    h.drain();
  }
  const auto& c = h.bank().counters();
  EXPECT_GE(c.get("fault_ecc_corrected"), 5u);
  // The scrub write that restarts the corrected line's decay clock is
  // charged to its own energy category.
  EXPECT_GT(h.bank().energy().category_pj("l2.fault.scrub"), 0.0);
}

TEST(UniformBankFaults, RecoveryOutcomesPartitionCollapses) {
  UniformBankConfig cfg = volatile_stt_cfg();
  cfg.faults = enabled_cfg();
  cfg.faults.accel = 100.0;
  UniformHarness h(cfg);
  // Mixed loads and stores over several sets, with idle gaps so lifetimes
  // spread across the collapse-probability range.
  for (int round = 0; round < 60; ++round) {
    for (int i = 0; i < 6; ++i) {
      h.send(static_cast<Addr>(i) * 2048 + 0x100, /*is_store=*/(round + i) % 3 == 0);
    }
    h.drain();
    h.run(1500);
  }
  h.drain();
  const auto& c = h.bank().counters();
  const std::uint64_t outcomes = c.get("fault_ecc_corrected") +
                                 c.get("fault_clean_refetch") +
                                 c.get("fault_data_loss");
  EXPECT_GT(h.bank().faults().trials(), 100u);
  // Every injected collapse resolves to exactly one recovery outcome.
  EXPECT_EQ(h.bank().faults().collapses(), outcomes);
}

TEST(UniformBankFaults, WriteVerifyRetriesAreCountedPerPhysicalWrite) {
  UniformBankConfig cfg;
  cfg.capacity_bytes = 16 * 1024;
  cfg.cell = nvm::stt_cell(nvm::RetentionClass::kYears10);  // non-volatile
  cfg.faults = enabled_cfg();
  cfg.faults.accel = 0.0;         // isolate the write-failure mechanism
  cfg.faults.write_fail_prob = 1.0;  // every pulse fails -> full retry ladder
  cfg.faults.write_retry_limit = 3;
  UniformHarness h(cfg);
  const auto id = h.send(0x100, /*is_store=*/true);
  h.drain();
  EXPECT_TRUE(h.responded(id));
  const auto& c = h.bank().counters();
  // Every physical line write exhausts its 3 retries and escalates once.
  EXPECT_GE(c.get("fault_wv_escalations"), 1u);
  EXPECT_EQ(c.get("fault_wv_retries"), 3 * c.get("fault_wv_escalations"));
}

TEST(UniformBankFaults, DisabledKnobsHaveNoEffectAndInternNothing) {
  // A disabled fault config must be byte-identical to the default even when
  // every other knob is scrambled: same counters, same energy categories,
  // same response timing.
  UniformBankConfig base = volatile_stt_cfg();
  UniformBankConfig scrambled = volatile_stt_cfg();
  scrambled.faults.enabled = false;
  scrambled.faults.seed = 12345;
  scrambled.faults.accel = 9999.0;
  scrambled.faults.write_fail_prob = 1.0;

  UniformHarness a(base);
  UniformHarness b(scrambled);
  for (UniformHarness* h : {&a, &b}) {
    for (int i = 0; i < 40; ++i) {
      h->send(static_cast<Addr>(i % 10) * 2048 + 0x80, i % 2 == 0);
      if (i % 5 == 0) h->drain();
      h->run(500);
    }
    h->drain();
  }
  EXPECT_EQ(a.bank().counters().all(), b.bank().counters().all());
  EXPECT_EQ(a.bank().energy().categories(), b.bank().energy().categories());
  ASSERT_EQ(a.responses().size(), b.responses().size());
  for (std::size_t i = 0; i < a.responses().size(); ++i) {
    EXPECT_EQ(a.responses()[i].ready, b.responses()[i].ready);
  }
  for (const auto& [name, value] : a.bank().counters().all()) {
    EXPECT_EQ(name.rfind("fault_", 0), std::string::npos) << name;
  }
}

// ---- two-part bank ----

TEST(TwoPartBankFaults, InjectsOnBothPartsWithIndependentStreams) {
  TwoPartBankConfig cfg;
  cfg.hr_bytes = 14 * 1024;
  cfg.lr_bytes = 4 * 1024;
  cfg.faults = enabled_cfg();
  cfg.faults.accel = 200.0;
  sttgpu::testing::TwoPartHarness h(cfg);
  // Stores (landing in LR, refresh-scrubbed) and re-read loads (HR).
  for (int round = 0; round < 80; ++round) {
    for (int i = 0; i < 8; ++i) {
      h.send(static_cast<Addr>(i) * 4096 + 0x40, /*is_store=*/i % 2 == 0);
    }
    h.drain();
    h.run(2000);
  }
  h.drain();
  EXPECT_GT(h.bank().lr_faults().trials(), 0u);
  EXPECT_GT(h.bank().hr_faults().trials(), 0u);
  const auto& c = h.bank().counters();
  const std::uint64_t outcomes = c.get("fault_ecc_corrected") +
                                 c.get("fault_clean_refetch") +
                                 c.get("fault_data_loss");
  EXPECT_EQ(h.bank().lr_faults().collapses() + h.bank().hr_faults().collapses(),
            outcomes);
}

// ---- fingerprint separation ----

TEST(FaultFingerprint, DisabledMatchesBaselineEnabledDoesNot) {
  const std::uint64_t base = sim::config_fingerprint();
  FaultInjectionConfig off;  // default: disabled
  off.seed = 777;            // scrambled knobs are irrelevant when disabled
  off.accel = 123.0;
  EXPECT_EQ(sim::config_fingerprint(off), base);

  FaultInjectionConfig on = enabled_cfg();
  const std::uint64_t on_fp = sim::config_fingerprint(on);
  EXPECT_NE(on_fp, base);
  on.seed = 43;
  EXPECT_NE(sim::config_fingerprint(on), on_fp);  // knobs fold into the hash
  on.seed = 42;
  on.accel = 2.0;
  EXPECT_NE(sim::config_fingerprint(on), on_fp);
}

// ---- end-to-end: full GPU run, injected vs analytic within 10% ----

TEST(FaultEndToEnd, FullRunInjectionMatchesReliabilityPrediction) {
  const sim::ArchSpec spec = sim::make_arch(sim::architecture_from_string("C1"));
  FaultInjectionConfig faults = enabled_cfg();
  faults.accel = 20.0;  // effective spec margin 1.0
  // scale 0.5 yields several hundred injected collapses — enough sample for
  // the 10% bound (the relative sampling noise scales as 1/sqrt(count)).
  const workload::Workload w = workload::make_benchmark("bfs", /*scale=*/0.5);
  gpu::RunResult run;
  sim::FaultSummary s;
  sim::run_one_detailed(
      spec, w, run,
      {.faults = faults,
       .inspect = [&s](gpu::Gpu& g) { s = sim::collect_fault_summary(g); }});
  ASSERT_TRUE(s.enabled);
  ASSERT_GT(s.trials, 10000u);
  ASSERT_GT(s.predicted, 100.0);
  // The acceptance criterion: injected failures within 10% of the analytic
  // analyze_reliability prediction over the same lifetimes.
  EXPECT_LT(std::abs(static_cast<double>(s.collapses) - s.predicted) / s.predicted,
            0.10);
  // analyze_reliability's bucketed score vs the exact expectation: <= 5%.
  EXPECT_LT(std::abs(s.predicted - s.expected) / s.expected, 0.05);
  // Every collapse resolved to exactly one recovery outcome.
  EXPECT_EQ(s.collapses, s.ecc_corrected + s.clean_refetch + s.data_loss);
}

TEST(FaultEndToEnd, DisabledFaultsLeaveRunResultUntouched) {
  sim::ArchSpec spec = sim::make_arch(sim::architecture_from_string("C1"));
  const workload::Workload w = workload::make_benchmark("bfs", /*scale=*/0.05);

  gpu::RunResult base_run;
  const sim::Metrics base = sim::run_one_detailed(spec, w, base_run);

  // Disabled injection with scrambled knobs must not perturb anything.
  FaultInjectionConfig scrambled;
  scrambled.enabled = false;
  scrambled.seed = 999;
  scrambled.accel = 50.0;
  gpu::RunResult run;
  sim::FaultSummary s;
  const sim::Metrics m = sim::run_one_detailed(
      spec, w, run,
      {.faults = scrambled,
       .inspect = [&s](gpu::Gpu& g) { s = sim::collect_fault_summary(g); }});

  EXPECT_FALSE(s.enabled);
  EXPECT_EQ(base.cycles, m.cycles);
  EXPECT_EQ(base.ipc, m.ipc);
  EXPECT_EQ(base.total_w, m.total_w);
  EXPECT_EQ(base_run.l2_counters.all(), run.l2_counters.all());
}

}  // namespace
}  // namespace sttgpu::sttl2
