#include "sttl2/reliability.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"

namespace sttgpu::sttl2 {
namespace {

Histogram fast_lifetimes() {
  // 1000 lifetimes of <=10us, 10 of ~1ms.
  Histogram h({us_to_ns(10.0), us_to_ns(50.0), us_to_ns(100.0), ms_to_ns(1.0)});
  h.add(us_to_ns(5.0), 1000);
  h.add(us_to_ns(900.0), 10);
  return h;
}

TEST(Reliability, RejectsBadInputs) {
  const Histogram h = fast_lifetimes();
  EXPECT_THROW(analyze_reliability(h, 0.0, 0.0, 1e6), SimError);
  EXPECT_THROW(analyze_reliability(h, 26.5e-6, 0.0, 0.0), SimError);
}

TEST(Reliability, LongRetentionIsSafe) {
  // 40ms retention against <=1ms lifetimes: essentially no failures.
  const ReliabilityReport r = analyze_reliability(fast_lifetimes(), 40e-3, 0.0, ms_to_ns(2.5));
  EXPECT_LT(r.failure_rate, 1e-1 * 0.3);  // overwhelmingly safe
  EXPECT_EQ(r.lifetimes, 1010u);
}

TEST(Reliability, ShortRetentionWithoutRefreshFails) {
  // 26.5us retention: the 1ms-lifetime tail is near-certain to collapse.
  const ReliabilityReport r =
      analyze_reliability(fast_lifetimes(), 26.5e-6, 0.0, ms_to_ns(2.5));
  EXPECT_GT(r.expected_failures, 9.0);  // the 10 slow lifetimes die
}

TEST(Reliability, RefreshCapsEveryLifetime) {
  // A slow-rewrite population (lifetimes ~1ms on a 26.5us part) is doomed
  // without refresh; refresh at 24.8us (one 4-bit counter tick before the
  // deadline) bounds every decay window and rescues it.
  Histogram slow({us_to_ns(10.0), ms_to_ns(1.0)});
  slow.add(us_to_ns(900.0), 100);
  const double refresh_s = 26.5e-6 * 15.0 / 16.0;
  const ReliabilityReport with = analyze_reliability(slow, 26.5e-6, refresh_s, ms_to_ns(2.5));
  const ReliabilityReport without = analyze_reliability(slow, 26.5e-6, 0.0, ms_to_ns(2.5));
  EXPECT_LT(with.expected_failures, 0.2 * without.expected_failures);
}

TEST(Reliability, MonotoneInRetention) {
  double prev = 1e18;
  for (const double ret : {5e-6, 26.5e-6, 100e-6, 1e-3, 40e-3}) {
    const ReliabilityReport r = analyze_reliability(fast_lifetimes(), ret, 0.0, ms_to_ns(2.5));
    EXPECT_LE(r.expected_failures, prev + 1e-12);
    prev = r.expected_failures;
  }
}

TEST(Reliability, EmptyHistogram) {
  Histogram h({1.0});
  const ReliabilityReport r = analyze_reliability(h, 26.5e-6, 0.0, 10.0);
  EXPECT_EQ(r.lifetimes, 0u);
  EXPECT_DOUBLE_EQ(r.expected_failures, 0.0);
  EXPECT_DOUBLE_EQ(r.failure_rate, 0.0);
}

}  // namespace
}  // namespace sttgpu::sttl2
