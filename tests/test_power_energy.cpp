#include "power/energy.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace sttgpu::power {
namespace {

TEST(EnergyLedger, AccumulatesByCategory) {
  EnergyLedger ledger;
  ledger.add(ledger.intern("l2.data_write"), 100.0);
  ledger.add(ledger.intern("l2.data_write"), 50.0);
  ledger.add(ledger.intern("l2.tag_probe"), 10.0);
  EXPECT_DOUBLE_EQ(ledger.category_pj("l2.data_write"), 150.0);
  EXPECT_DOUBLE_EQ(ledger.category_pj("l2.tag_probe"), 10.0);
  EXPECT_DOUBLE_EQ(ledger.category_pj("unknown"), 0.0);
  EXPECT_DOUBLE_EQ(ledger.total_pj(), 160.0);
}

TEST(EnergyLedger, MergeAndReset) {
  EnergyLedger a, b;
  a.add(a.intern("x"), 1.0);
  b.add(b.intern("x"), 2.0);
  b.add(b.intern("y"), 3.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.category_pj("x"), 3.0);
  EXPECT_DOUBLE_EQ(a.category_pj("y"), 3.0);
  EXPECT_DOUBLE_EQ(a.total_pj(), 6.0);
  a.reset();
  EXPECT_DOUBLE_EQ(a.total_pj(), 0.0);
  EXPECT_TRUE(a.categories().empty());
}

TEST(EnergyLedger, InternedHandlesAliasStringCategories) {
  EnergyLedger l;
  const EnergyId id = l.intern("l2.write");
  EXPECT_EQ(l.intern("l2.write"), id);  // idempotent
  l.add(id, 2.0);
  l.add(l.intern("l2.write"), 3.0);  // re-interning yields the same slot
  EXPECT_DOUBLE_EQ(l.category_pj("l2.write"), 5.0);
  EXPECT_DOUBLE_EQ(l.total_pj(), 5.0);
  // Interning alone creates the category at zero (visible in categories()).
  l.intern("l2.read");
  const auto cats = l.categories();
  EXPECT_EQ(cats.size(), 2u);
  EXPECT_DOUBLE_EQ(cats.at("l2.read"), 0.0);
}

TEST(EnergyLedger, MergeResolvesByNameNotById) {
  // The same category can have different ids in different ledgers (banks
  // intern in construction order); merge must match by name.
  EnergyLedger a, b;
  a.intern("alpha");
  a.add(a.intern("beta"), 1.0);
  b.add(b.intern("beta"), 2.0);
  b.add(b.intern("alpha"), 4.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.category_pj("alpha"), 4.0);
  EXPECT_DOUBLE_EQ(a.category_pj("beta"), 3.0);
  EXPECT_DOUBLE_EQ(a.total_pj(), 7.0);
}

TEST(PowerReport, ConvertsEnergyToWatts) {
  EnergyLedger ledger;
  ledger.add(ledger.intern("x"), 1e12);  // 1 J
  const PowerReport r = PowerReport::from_run(ledger, /*leakage_w=*/0.5, /*runtime_s=*/2.0);
  EXPECT_DOUBLE_EQ(r.dynamic_w, 0.5);
  EXPECT_DOUBLE_EQ(r.leakage_w, 0.5);
  EXPECT_DOUBLE_EQ(r.total_w, 1.0);
  EXPECT_DOUBLE_EQ(r.runtime_s, 2.0);
}

TEST(PowerReport, RejectsNonPositiveRuntime) {
  EnergyLedger ledger;
  EXPECT_THROW(PowerReport::from_run(ledger, 0.0, 0.0), SimError);
  EXPECT_THROW(PowerReport::from_run(ledger, 0.0, -1.0), SimError);
}

}  // namespace
}  // namespace sttgpu::power
