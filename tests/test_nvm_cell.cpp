#include "nvm/cell.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace sttgpu::nvm {
namespace {

TEST(Cell, SttIsFourTimesDenser) {
  const CellParams sram = sram_cell();
  const CellParams stt = stt_cell(RetentionClass::kYears10);
  EXPECT_NEAR(sram.area_f2_per_bit / stt.area_f2_per_bit, 4.0, 1e-9);
}

TEST(Cell, SttLeakageNearZeroVsSram) {
  const CellParams sram = sram_cell();
  const CellParams stt = stt_cell(RetentionClass::kMs40);
  EXPECT_LT(stt.leakage_nw_per_bit, sram.leakage_nw_per_bit / 20.0);
}

TEST(Cell, RetentionClassValues) {
  EXPECT_NEAR(retention_seconds(RetentionClass::kUs26), 26.5e-6, 1e-12);
  EXPECT_NEAR(retention_seconds(RetentionClass::kMs40), 40e-3, 1e-12);
  EXPECT_NEAR(retention_seconds(RetentionClass::kYears10), 3.156e8, 1e6);
}

TEST(Cell, RefreshFlagFollowsRetention) {
  EXPECT_FALSE(stt_cell(RetentionClass::kYears10).needs_refresh);
  EXPECT_TRUE(stt_cell(RetentionClass::kMs40).needs_refresh);
  EXPECT_TRUE(stt_cell(RetentionClass::kUs26).needs_refresh);
  EXPECT_FALSE(sram_cell().needs_refresh);
}

TEST(Cell, WriteCostOrderingAcrossClasses) {
  const CellParams y10 = stt_cell(RetentionClass::kYears10);
  const CellParams ms40 = stt_cell(RetentionClass::kMs40);
  const CellParams us26 = stt_cell(RetentionClass::kUs26);
  EXPECT_GT(y10.write_energy_pj_per_bit, ms40.write_energy_pj_per_bit);
  EXPECT_GT(ms40.write_energy_pj_per_bit, us26.write_energy_pj_per_bit);
  EXPECT_GT(y10.write_latency_ns, ms40.write_latency_ns);
  EXPECT_GT(ms40.write_latency_ns, us26.write_latency_ns);
}

TEST(Cell, SttWritesSlowerThanSramWrites) {
  // Even the fastest (lowest-retention) STT cell writes slower than SRAM —
  // the premise of the whole problem.
  EXPECT_GT(stt_cell(RetentionClass::kUs26).write_latency_ns,
            sram_cell().write_latency_ns);
}

TEST(Cell, SttReadCompetitiveWithSram) {
  // STT reads are within ~2x of SRAM reads (reads are not the problem).
  const CellParams stt = stt_cell(RetentionClass::kMs40);
  EXPECT_LT(stt.read_latency_ns, 2.0 * sram_cell().read_latency_ns);
}

TEST(Cell, ArbitraryRetentionRejectsNonPositive) {
  EXPECT_THROW(stt_cell_for_retention(0.0), SimError);
  EXPECT_THROW(stt_cell_for_retention(-5.0), SimError);
}

TEST(Cell, ArbitraryRetentionInterpolates) {
  const CellParams mid = stt_cell_for_retention(1e-3);  // between 26.5us and 40ms
  const CellParams lo = stt_cell(RetentionClass::kUs26);
  const CellParams hi = stt_cell(RetentionClass::kMs40);
  EXPECT_GT(mid.write_latency_ns, lo.write_latency_ns);
  EXPECT_LT(mid.write_latency_ns, hi.write_latency_ns);
  EXPECT_TRUE(mid.needs_refresh);
  EXPECT_NEAR(mid.retention_s, 1e-3, 1e-12);
}

TEST(Cell, NamesAreDescriptive) {
  EXPECT_EQ(sram_cell().name, "sram-6t");
  EXPECT_NE(stt_cell(RetentionClass::kUs26).name.find("26.5us"), std::string::npos);
}

}  // namespace
}  // namespace sttgpu::nvm
