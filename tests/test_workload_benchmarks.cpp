#include "workload/benchmarks.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"

namespace sttgpu::workload {
namespace {

TEST(Benchmarks, RegistryHasSixteenUniqueNames) {
  const auto names = benchmark_names();
  EXPECT_EQ(names.size(), 16u);
  EXPECT_EQ(std::set<std::string>(names.begin(), names.end()).size(), names.size());
}

TEST(Benchmarks, EveryRegionIsRepresented) {
  std::set<std::string> regions;
  for (const auto& name : benchmark_names()) {
    regions.insert(make_benchmark(name).region);
  }
  EXPECT_EQ(regions.size(), 4u);  // the paper's Fig. 8 regions
}

TEST(Benchmarks, UnknownNameThrows) { EXPECT_THROW(make_benchmark("nope"), SimError); }

TEST(Benchmarks, ScaleShrinksWork) {
  const Workload full = make_benchmark("bfs", 1.0);
  const Workload half = make_benchmark("bfs", 0.5);
  EXPECT_LT(half.total_instructions(), full.total_instructions());
  EXPECT_GT(half.total_instructions(), 0u);
  EXPECT_THROW(make_benchmark("bfs", 0.0), SimError);
  EXPECT_THROW(make_benchmark("bfs", 1.5), SimError);
}

TEST(Benchmarks, AllBenchmarksMatchesRegistry) {
  const auto all = all_benchmarks(0.5);
  const auto names = benchmark_names();
  ASSERT_EQ(all.size(), names.size());
  for (std::size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i].name, names[i]);
}

TEST(Benchmarks, WriteIntensitySpansTheSuite) {
  // The paper: "near zero to 63% of write operations". nw is the near-zero
  // end, bfs the write-heavy end.
  const Workload nw = make_benchmark("nw");
  const Workload bfs = make_benchmark("bfs");
  EXPECT_LT(nw.kernels[0].store_fraction, 0.05);
  EXPECT_GT(bfs.kernels[0].store_fraction, 0.3);
}

TEST(Benchmarks, RegisterLimitedKernelsUseTheOccupancyBoundary) {
  // Region 2/3 kernels: 256 threads x 43 regs = 11008 regs/block so the
  // baseline fits 2 blocks and the C2/C3 register files fit 3.
  for (const char* name : {"tpacf", "mri-g", "backprop", "histo", "kmeans"}) {
    const Workload w = make_benchmark(name);
    for (const auto& k : w.kernels) {
      EXPECT_EQ(static_cast<std::uint64_t>(k.regs_per_thread) * k.threads_per_block, 11008u)
          << name << "/" << k.name;
    }
  }
}

TEST(Benchmarks, CacheFriendlyFootprintsFitTheBigL2Only) {
  // Regions 3/4 footprints: bigger than 384KB, no bigger than 1536KB.
  for (const char* name : {"kmeans", "sradv2", "streamcl", "bfs", "cfd", "stencil"}) {
    const Workload w = make_benchmark(name);
    const auto fp = w.kernels[0].pattern.footprint_bytes;
    EXPECT_GT(fp, 384u * 1024) << name;
    EXPECT_LE(fp, 1536u * 1024) << name;
  }
}

TEST(Benchmarks, InsensitiveFootprintsExceedEveryL2) {
  for (const char* name : {"sad", "mum", "lbm"}) {
    const Workload w = make_benchmark(name);
    EXPECT_GT(w.kernels[0].pattern.footprint_bytes, 4u * 1024 * 1024) << name;
  }
}

TEST(Benchmarks, EvenWritersHaveNoHotSet) {
  for (const char* name : {"cfd", "stencil", "nw", "lbm", "sad"}) {
    const Workload w = make_benchmark(name);
    EXPECT_EQ(w.kernels[0].pattern.wws_lines, 0u) << name;
  }
}

TEST(Benchmarks, HotWritersHaveAHotSet) {
  for (const char* name : {"bfs", "kmeans", "histo", "mri-g", "tpacf", "backprop"}) {
    const Workload w = make_benchmark(name);
    bool any_hot = false;
    for (const auto& k : w.kernels) any_hot = any_hot || k.pattern.wws_lines > 0;
    EXPECT_TRUE(any_hot) << name;
  }
}

}  // namespace
}  // namespace sttgpu::workload
