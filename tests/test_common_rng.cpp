#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sttgpu {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 3);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, NextBelowBounds) {
  Rng rng(3);
  for (const std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceRespectProbabilityRoughly) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.25);
}

TEST(Zipf, SingleElement) {
  ZipfSampler z(1, 1.0);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(z.sample(rng), 0u);
}

TEST(Zipf, RejectsEmpty) { EXPECT_THROW(ZipfSampler(0, 1.0), SimError); }

TEST(Zipf, SamplesInRange) {
  ZipfSampler z(64, 0.9);
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(z.sample(rng), 64u);
}

// Property: rank frequencies decrease (statistically) with rank for s > 0.
class ZipfSkew : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSkew, HeadOutweighsTail) {
  ZipfSampler z(128, GetParam());
  Rng rng(23);
  std::vector<int> counts(128, 0);
  for (int i = 0; i < 50000; ++i) counts[z.sample(rng)]++;
  int head = 0, tail = 0;
  for (int i = 0; i < 16; ++i) head += counts[i];
  for (int i = 112; i < 128; ++i) tail += counts[i];
  EXPECT_GT(head, 2 * tail);
  EXPECT_GT(counts[0], counts[64]);
}

INSTANTIATE_TEST_SUITE_P(SkewLevels, ZipfSkew, ::testing::Values(0.7, 0.9, 1.1, 1.3));

}  // namespace
}  // namespace sttgpu
