// Regenerates the paper's Figure 4: the effect of the HR write threshold
// (TH1, TH3, TH7, TH15) on
//   (top)    the LR-to-HR write ratio, normalized to TH1, and
//   (bottom) the total number of physical L2 writes, normalized to TH1
// on the C1 geometry.
//
//   ./fig4_write_threshold [scale=0.4]
//
// Shape to reproduce: lower thresholds strictly improve LR utilization with
// no noticeable total-write overhead, so TH1 (the plain modified bit) wins.
#include <iostream>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/probe.hpp"

int main(int argc, char** argv) {
  using namespace sttgpu;

  const Config cfg = Config::from_args(argc, argv);
  const double scale = cfg.get_double("scale", 0.4);
  const unsigned thresholds[] = {1, 3, 7, 15};

  std::cout << "Figure 4: HR write-threshold analysis on C1 (normalized to TH1)\n\n";

  TextTable ratio({"benchmark", "TH1", "TH3", "TH7", "TH15"});
  TextTable overhead({"benchmark", "TH1", "TH3", "TH7", "TH15"});
  std::vector<std::vector<double>> ratio_cols(4), over_cols(4);

  for (const std::string& name : workload::benchmark_names()) {
    std::vector<std::string> r_row{name}, o_row{name};
    double base_ratio = 0.0, base_writes = 0.0;
    for (std::size_t t = 0; t < 4; ++t) {
      sttl2::TwoPartBankConfig bank = sim::c1_bank_config();
      bank.write_threshold = thresholds[t];
      const sim::TwoPartProbe p = sim::run_two_part(name, bank, scale);
      const double lr = static_cast<double>(p.counters.get("w_lr"));
      const double hr = static_cast<double>(p.counters.get("w_hr"));
      const double lr_hr_ratio = hr > 0 ? lr / hr : lr;
      const double total_writes = static_cast<double>(p.counters.get("lr_phys_writes") +
                                                      p.counters.get("hr_phys_writes"));
      if (t == 0) {
        base_ratio = lr_hr_ratio > 0 ? lr_hr_ratio : 1.0;
        base_writes = total_writes > 0 ? total_writes : 1.0;
      }
      const double nr = lr_hr_ratio / base_ratio;
      const double no = total_writes / base_writes;
      r_row.push_back(TextTable::fmt(nr, 3));
      o_row.push_back(TextTable::fmt(no, 3));
      if (lr_hr_ratio > 0) ratio_cols[t].push_back(nr);
      if (total_writes > 0) over_cols[t].push_back(no);
    }
    ratio.add_row(std::move(r_row));
    overhead.add_row(std::move(o_row));
  }

  std::vector<std::string> r_avg{"Gmean"}, o_avg{"Gmean"};
  for (std::size_t t = 0; t < 4; ++t) {
    r_avg.push_back(TextTable::fmt(geometric_mean(ratio_cols[t]), 3));
    o_avg.push_back(TextTable::fmt(geometric_mean(over_cols[t]), 3));
  }
  ratio.add_row(std::move(r_avg));
  overhead.add_row(std::move(o_avg));

  std::cout << "(a) LR/HR write ratio, normalized to TH1:\n";
  ratio.print(std::cout);
  std::cout << "\n(b) total physical L2 writes, normalized to TH1:\n";
  overhead.print(std::cout);
  std::cout << "\nShape check (paper): ratio falls as the threshold rises; total\n"
               "writes stay within a few percent of TH1 => threshold 1 is justified.\n";
  return 0;
}
