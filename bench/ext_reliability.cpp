// Extension analysis (beyond the paper's figures): retention reliability.
//
// Section 4 of the paper: lowering retention raises the error rate from
// early bit collapse, and the architecture answers with counter-scheduled
// refresh. This bench closes the loop quantitatively: it feeds each
// benchmark's *measured* LR rewrite-interval distribution (Fig. 6 data)
// into the Néel–Arrhenius decay model and reports the expected number of
// early-collapse events per run — with refresh (the real design), without
// refresh (naive low-retention), and for a hypothetical 5us part.
//
//   ./ext_reliability [scale=0.4]
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "sim/probe.hpp"
#include "sttl2/reliability.hpp"

int main(int argc, char** argv) {
  using namespace sttgpu;

  const Config cfg = Config::from_args(argc, argv);
  const double scale = cfg.get_double("scale", 0.4);

  // Refresh fires one 4-bit counter tick before the 26.5us deadline.
  const double refresh_s = 26.5e-6 * 15.0 / 16.0;
  const double overflow_ns = ms_to_ns(5.0);

  std::cout << "Extension: expected early-collapse events in the LR part (C1)\n"
               "as a function of the device's retention guard band (thermal life /\n"
               "quoted 26.5us retention). Refresh fires one counter tick before\n"
               "the quoted deadline, bounding every decay window.\n\n";

  TextTable table({"benchmark", "lifetimes", "margin 10x", "margin 100x", "margin 1000x"});
  for (const std::string& name : workload::benchmark_names()) {
    const sim::TwoPartProbe p = sim::run_two_part(name, sim::c1_bank_config(), scale);
    if (p.lr_intervals == 0) {
      table.add_row({name, "0", "-", "-", "-"});
      continue;
    }
    const auto at = [&](double margin, double refresh) {
      return sttl2::analyze_reliability(p.lr_interval_hist, 26.5e-6, refresh, overflow_ns,
                                        margin)
          .expected_failures;
    };
    table.add_row({name, std::to_string(p.lr_intervals),
                   TextTable::fmt(at(10.0, refresh_s), 3),
                   TextTable::fmt(at(100.0, refresh_s), 4),
                   TextTable::fmt(at(1000.0, refresh_s), 5)});
  }
  table.print(std::cout);

  std::cout << "\nReading: expected failures fall ~linearly with the device guard\n"
               "band, and refresh bounds every decay window at one counter tick\n"
               "before the deadline (lines never rewritten are refreshed or, at\n"
               "worst, written back — see the refresh_forced_wb counters). With\n"
               "the ~100x margins typical of published multi-retention designs\n"
               "the per-run failure expectation is <<1 — the quantitative form\n"
               "of the paper's 'low retention suffices for the WWS' argument.\n";
  return 0;
}
