// Regenerates the paper's Table 1: STT-RAM parameters for different data
// retention times — thermal stability factor Δ, retention time, write
// latency (W.L), write energy per 256B line (W.E), and whether refreshing
// is required.
//
// The values derive from the MtjModel (Néel–Arrhenius retention plus the
// calibration anchors from the paper's refs [12]/[14]); see DESIGN.md for
// why the absolute digits of the source table had to be reconstructed.
#include <iostream>

#include "common/table.hpp"
#include "nvm/cell.hpp"
#include "nvm/mtj.hpp"

int main() {
  using namespace sttgpu;

  std::cout << "Table 1: STT-RAM parameters for different data retention times\n\n";

  nvm::MtjModel mtj;
  TextTable table({"delta", "retention", "W.L (ns)", "W.E (nJ/line)", "refresh"});

  const struct Row {
    nvm::RetentionClass rc;
    const char* retention_label;
    const char* refresh;
  } rows[] = {
      {nvm::RetentionClass::kYears10, "10 years", "none"},
      {nvm::RetentionClass::kMs40, "40 ms", "expiry (block)"},
      {nvm::RetentionClass::kUs26, "26.5 us", "refresh (block)"},
  };

  for (const Row& row : rows) {
    const double ret_s = nvm::retention_seconds(row.rc);
    const double delta = mtj.delta_for_retention(ret_s);
    table.add_row({TextTable::fmt(delta, 2), row.retention_label,
                   TextTable::fmt(mtj.write_pulse_ns(delta), 2),
                   TextTable::fmt(mtj.write_energy_nj_per_line(delta), 3), row.refresh});
  }
  table.print(std::cout);

  std::cout << "\nread pulse: " << mtj.read_pulse_ns() << " ns, read energy: "
            << mtj.read_energy_nj_per_line() << " nJ/line (retention independent)\n";
  std::cout << "\nShape check (paper): lower retention => strictly lower write"
               " latency and energy; 10-year cells are the slowest/most costly.\n";
  return 0;
}
