// Regenerates the paper's Figure 8(a): per-benchmark speedup of the
// STT-RAM baseline and the proposed C1/C2/C3 architectures, normalized to
// the SRAM baseline, grouped by region, with the geometric mean.
//
//   ./fig8a_speedup [scale=0.5] [cache=fig8_cache.csv] [jobs=N]
//
// The 80 underlying simulations run on `jobs` worker threads (default all
// hardware threads) and are cached in a CSV (shared with the fig8b/fig8c
// binaries); delete the file to force re-simulation. A cache written at a
// different scale or simulator config is discarded automatically.
//
// Shape to reproduce (paper): STT baseline ~+5% average with per-benchmark
// regressions; C1 ~+16% average and >2x best case; C1/C2/C3 without the
// STT baseline's write-latency collapses; region structure as annotated.
#include <iostream>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/executor.hpp"
#include "sim/runner.hpp"

int main(int argc, char** argv) {
  using namespace sttgpu;

  const Config cfg = Config::from_args(argc, argv);
  const double scale = cfg.get_double("scale", 0.5);
  const std::string cache = cfg.get_string("cache", "fig8_cache.csv");
  const unsigned jobs = sim::resolve_jobs(cfg.get_int("jobs", 0));

  const auto rows = sim::run_matrix(sim::all_architectures(),
                                    {.scale = scale, .cache_path = cache, .jobs = jobs});
  const auto base = sim::by_benchmark(rows, "sram");

  std::cout << "Figure 8(a): speedup over the SRAM baseline\n\n";
  TextTable table({"benchmark", "region", "stt-base", "C1", "C2", "C3"});
  std::map<std::string, std::vector<double>> gmean;

  for (const std::string& name : workload::benchmark_names()) {
    const workload::Workload w = workload::make_benchmark(name, scale);
    std::vector<std::string> row{name, w.region};
    for (const char* arch : {"stt-base", "C1", "C2", "C3"}) {
      const auto m = sim::by_benchmark(rows, arch);
      const double speedup = m.at(name).ipc / base.at(name).ipc;
      row.push_back(TextTable::fmt(speedup, 3));
      gmean[arch].push_back(speedup);
    }
    table.add_row(std::move(row));
  }
  table.add_row({"Gmean", "", TextTable::fmt(geometric_mean(gmean["stt-base"]), 3),
                 TextTable::fmt(geometric_mean(gmean["C1"]), 3),
                 TextTable::fmt(geometric_mean(gmean["C2"]), 3),
                 TextTable::fmt(geometric_mean(gmean["C3"]), 3)});
  table.print(std::cout);

  std::cout << "\nPaper reference points: stt-base +5% avg (with degradations),\n"
               "C1 +16% avg / >2x best, no C1-C3 write-latency collapses.\n";
  return 0;
}
