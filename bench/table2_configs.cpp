// Regenerates the paper's Table 2: the evaluated GPGPU-Sim configurations —
// baseline GPU model, SRAM baseline L2, STT-RAM baseline, and C1/C2/C3 —
// including the equal-area accounting that converts saved L2 area into
// register-file capacity for C2/C3.
#include <iostream>

#include "common/table.hpp"
#include "sim/arch.hpp"

int main() {
  using namespace sttgpu;

  const gpu::GpuConfig base;
  std::cout << "Table 2: simulated configurations (GTX480-class baseline GPU)\n\n"
            << "baseline GPU model: " << base.num_sms << " clusters, 1 SM/cluster, "
            << "L1D " << base.l1d_size / 1024 << "KB " << base.l1d_assoc << "-way "
            << base.l1d_line << "B lines, const " << base.l1c_size / 1024
            << "KB, tex " << base.l1t_size / 1024 << "KB " << base.l1t_line
            << "B lines, shared " << base.shared_mem_per_sm / 1024 << "KB, "
            << base.num_l2_banks << " memory controllers, 40nm, "
            << base.registers_per_sm << " 32-bit registers/SM\n\n";

  TextTable table({"config", "L2 organization", "regs/SM", "L2 data area (mm^2)",
                   "RF delta (mm^2)"});
  for (const auto arch : sim::all_architectures()) {
    const sim::ArchSpec spec = sim::make_arch(arch);
    std::string org;
    if (spec.two_part) {
      const auto& c = spec.two_part_cfg;
      org = std::to_string(c.hr_bytes * spec.gpu.num_l2_banks / 1024) + "KB " +
            std::to_string(c.hr_assoc) + "-way HR + " +
            std::to_string(c.lr_bytes * spec.gpu.num_l2_banks / 1024) + "KB " +
            std::to_string(c.lr_assoc) + "-way LR (STT-RAM)";
    } else {
      org = std::to_string(spec.uniform.capacity_bytes * spec.gpu.num_l2_banks / 1024) +
            "KB " + std::to_string(spec.uniform.associativity) + "-way (" +
            spec.uniform.cell.name + ")";
    }
    table.add_row({spec.name, org, std::to_string(spec.gpu.registers_per_sm),
                   TextTable::fmt(spec.l2_data_area_mm2, 3),
                   TextTable::fmt(spec.regfile_extra_mm2, 3)});
  }
  table.print(std::cout);

  std::cout << "\nEqual-area check: every non-SRAM config's L2 data area plus its\n"
               "register-file delta equals the SRAM baseline's L2 data area (the\n"
               "paper's fairness rule; STT-RAM cell = 1/4 SRAM cell area).\n";
  return 0;
}
