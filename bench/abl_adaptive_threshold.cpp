// Ablation (extension feature): runtime-adaptive migration threshold.
//
// When the write working set exceeds the LR capacity, TH1 migrates blocks
// that immediately bounce back out (churn). The adaptive monitor raises the
// threshold under churn and relaxes it when the LR has headroom. This bench
// compares fixed TH1 against the adaptive monitor on an LR squeezed to 1/4
// of the C1 size (to provoke churn) and on the normal C1 size.
//
//   ./abl_adaptive_threshold [scale=0.4] [jobs=N]
#include <iostream>
#include <iterator>
#include <vector>

#include "common/config.hpp"
#include "common/table.hpp"
#include "sim/executor.hpp"
#include "sim/probe.hpp"

int main(int argc, char** argv) {
  using namespace sttgpu;

  const Config cfg = Config::from_args(argc, argv);
  const double scale = cfg.get_double("scale", 0.4);
  const unsigned jobs = sim::resolve_jobs(cfg.get_int("jobs", 0));
  const char* benchmarks[] = {"bfs", "mri-g", "kmeans", "histo", "backprop"};

  std::cout << "Ablation: adaptive migration threshold (extension)\n\n";
  TextTable table({"benchmark", "LR", "monitor", "migrations", "lr evictions",
                   "forced wb", "IPC"});

  // One job per (benchmark, LR size, monitor) cell; rows are filled by
  // index so the table order is identical for any job count.
  std::vector<std::vector<std::string>> rows(std::size(benchmarks) * 4);
  std::vector<sim::Job> work;
  std::size_t slot = 0;
  for (const char* name : benchmarks) {
    for (const bool squeezed : {false, true}) {
      for (const bool adaptive : {false, true}) {
        work.push_back(sim::Job{
            std::string(name) + (squeezed ? "/8KB" : "/32KB") +
                (adaptive ? "/adaptive" : "/TH1"),
            [&, name, squeezed, adaptive, slot]() {
              sttl2::TwoPartBankConfig bank = sim::c1_bank_config();
              if (squeezed) bank.lr_bytes /= 4;  // 8KB per bank: easy to thrash
              bank.adaptive_threshold = adaptive;
              const sim::TwoPartProbe p = sim::run_two_part(name, bank, scale);
              rows[slot] = {name,
                            squeezed ? "8KB/bank" : "32KB/bank",
                            adaptive ? "adaptive" : "TH1",
                            std::to_string(p.counters.get("migrations")),
                            std::to_string(p.counters.get("lr_evictions")),
                            std::to_string(p.counters.get("lr_forced_wb")),
                            TextTable::fmt(p.metrics.ipc, 3)};
            }});
        ++slot;
      }
    }
  }
  sim::run_jobs(std::move(work), jobs);
  for (std::vector<std::string>& row : rows) table.add_row(std::move(row));
  table.print(std::cout);

  std::cout << "\nExpected: on the squeezed LR the adaptive monitor cuts migration\n"
               "churn substantially; on the properly sized C1 LR it stays at TH1\n"
               "and matches the paper's design.\n";
  return 0;
}
