// Regenerates the paper's Figure 8(c): total L2 power (dynamic + leakage)
// of the STT-RAM baseline and C1/C2/C3, normalized to the SRAM baseline.
//
//   ./fig8c_total_power [scale=0.5] [cache=fig8_cache.csv] [jobs=N]
//
// Shape to reproduce (paper): the SRAM L2 is leakage dominated, so every
// two-part STT configuration lands well below it (paper averages: C1 -20%,
// C2 -63.5%, C3 -42%) while the naive STT baseline, despite near-zero
// leakage, pays so much write energy that it exceeds SRAM (+19%) on the
// write-heavy part of the suite.
#include <iostream>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/executor.hpp"
#include "sim/runner.hpp"

int main(int argc, char** argv) {
  using namespace sttgpu;

  const Config cfg = Config::from_args(argc, argv);
  const double scale = cfg.get_double("scale", 0.5);
  const std::string cache = cfg.get_string("cache", "fig8_cache.csv");
  const unsigned jobs = sim::resolve_jobs(cfg.get_int("jobs", 0));

  const auto rows = sim::run_matrix(sim::all_architectures(),
                                    {.scale = scale, .cache_path = cache, .jobs = jobs});
  const auto base = sim::by_benchmark(rows, "sram");

  std::cout << "Figure 8(c): total L2 power normalized to the SRAM baseline\n\n";
  TextTable table({"benchmark", "stt-base", "C1", "C2", "C3"});
  std::map<std::string, std::vector<double>> gmean;

  for (const std::string& name : workload::benchmark_names()) {
    std::vector<std::string> row{name};
    for (const char* arch : {"stt-base", "C1", "C2", "C3"}) {
      const auto m = sim::by_benchmark(rows, arch);
      const double norm = m.at(name).total_w / base.at(name).total_w;
      row.push_back(TextTable::fmt(norm, 3));
      gmean[arch].push_back(norm);
    }
    table.add_row(std::move(row));
  }
  table.add_row({"Gmean", TextTable::fmt(geometric_mean(gmean["stt-base"]), 3),
                 TextTable::fmt(geometric_mean(gmean["C1"]), 3),
                 TextTable::fmt(geometric_mean(gmean["C2"]), 3),
                 TextTable::fmt(geometric_mean(gmean["C3"]), 3)});
  table.print(std::cout);

  std::cout << "\nPaper reference points: C1 0.80, C2 0.365, C3 0.58, stt-base 1.19\n"
               "(averages; the ordering C2 < C3 < C1 < SRAM is the shape to hold).\n";
  return 0;
}
