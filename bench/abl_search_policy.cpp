// Ablation: sequential vs parallel cache search (Section 5's search
// selector). Sequential probing (writes: LR first; reads: HR first) saves
// tag-probe energy at the cost of a serialized second probe on first-probe
// misses.
//
//   ./abl_search_policy [scale=0.4]
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "sim/probe.hpp"

int main(int argc, char** argv) {
  using namespace sttgpu;

  const Config cfg = Config::from_args(argc, argv);
  const double scale = cfg.get_double("scale", 0.4);

  std::cout << "Ablation: cache-search policy on C1\n\n";
  TextTable table({"benchmark", "policy", "tag probes (LR+HR)", "IPC", "dyn W"});

  for (const std::string& name : workload::benchmark_names()) {
    for (const auto policy : {sttl2::SearchPolicy::kSequential, sttl2::SearchPolicy::kParallel}) {
      sttl2::TwoPartBankConfig bank = sim::c1_bank_config();
      bank.search = policy;
      const sim::TwoPartProbe p = sim::run_two_part(name, bank, scale);
      table.add_row({name, sttl2::to_string(policy),
                     std::to_string(p.counters.get("tag_probes_lr") +
                                    p.counters.get("tag_probes_hr")),
                     TextTable::fmt(p.metrics.ipc, 3), TextTable::fmt(p.metrics.dynamic_w, 3)});
    }
  }
  table.print(std::cout);

  std::cout << "\nExpected: sequential search probes fewer tags (energy win) with a\n"
               "negligible IPC cost because the common case (writes in LR, reads in\n"
               "HR) hits on the first probe.\n";
  return 0;
}
