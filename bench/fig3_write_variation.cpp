// Regenerates the paper's Figure 3: inter- and intra-set write variation
// (i2WAP coefficient of variation) of the L2 cache across the benchmark
// suite, measured on the SRAM baseline, plus the geometric mean.
//
//   ./fig3_write_variation [scale=0.5]
//
// Shape to reproduce: hot-spot writers (bfs, kmeans, backprop, mri-g,
// tpacf, histo) show much higher variation than even writers (stencil,
// cfd, lbm, sad).
#include <iostream>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/probe.hpp"

int main(int argc, char** argv) {
  using namespace sttgpu;

  const Config cfg = Config::from_args(argc, argv);
  const double scale = cfg.get_double("scale", 0.5);

  std::cout << "Figure 3: inter/intra-set write variation (COV) on the SRAM baseline\n\n";

  TextTable table({"benchmark", "region", "inter-set COV", "intra-set COV", "write share"});
  std::vector<double> inter, intra;
  for (const std::string& name : workload::benchmark_names()) {
    const sim::UniformProbe p = sim::run_uniform(name, sim::sram_bank_config(), scale);
    const workload::Workload w = workload::make_benchmark(name, scale);
    table.add_row({name, w.region, TextTable::fmt_percent(p.inter_set_cov),
                   TextTable::fmt_percent(p.intra_set_cov),
                   TextTable::fmt_percent(p.write_share)});
    if (p.inter_set_cov > 0) inter.push_back(p.inter_set_cov);
    if (p.intra_set_cov > 0) intra.push_back(p.intra_set_cov);
  }
  table.add_row({"Gmean", "", TextTable::fmt_percent(geometric_mean(inter)),
                 TextTable::fmt_percent(geometric_mean(intra)), ""});
  table.print(std::cout);

  std::cout << "\nShape check (paper): large variation spread across the suite;\n"
               "hot-write benchmarks far above the even writers — this justifies a\n"
               "write-favouring low-retention region in the L2.\n";
  return 0;
}
