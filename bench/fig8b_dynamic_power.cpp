// Regenerates the paper's Figure 8(b): L2 dynamic power of the STT-RAM
// baseline and C1/C2/C3, normalized to the SRAM baseline.
//
//   ./fig8b_dynamic_power [scale=0.5] [cache=fig8_cache.csv] [jobs=N]
//
// Shape to reproduce (paper): STT architectures pay MORE dynamic power than
// SRAM (write energy of MTJ cells; C1/C2/C3 averaged 1.69/1.67/1.94x in the
// paper), and the naive STT baseline is several times C1 (5x in the paper)
// because every write pays the 10-year write energy.
#include <iostream>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/executor.hpp"
#include "sim/runner.hpp"

int main(int argc, char** argv) {
  using namespace sttgpu;

  const Config cfg = Config::from_args(argc, argv);
  const double scale = cfg.get_double("scale", 0.5);
  const std::string cache = cfg.get_string("cache", "fig8_cache.csv");
  const unsigned jobs = sim::resolve_jobs(cfg.get_int("jobs", 0));

  const auto rows = sim::run_matrix(sim::all_architectures(),
                                    {.scale = scale, .cache_path = cache, .jobs = jobs});
  const auto base = sim::by_benchmark(rows, "sram");

  std::cout << "Figure 8(b): L2 dynamic power normalized to the SRAM baseline\n\n";
  TextTable table({"benchmark", "stt-base", "C1", "C2", "C3"});
  std::map<std::string, std::vector<double>> gmean;

  for (const std::string& name : workload::benchmark_names()) {
    std::vector<std::string> row{name};
    for (const char* arch : {"stt-base", "C1", "C2", "C3"}) {
      const auto m = sim::by_benchmark(rows, arch);
      const double norm = m.at(name).dynamic_w / base.at(name).dynamic_w;
      row.push_back(TextTable::fmt(norm, 3));
      gmean[arch].push_back(norm);
    }
    table.add_row(std::move(row));
  }
  table.add_row({"Gmean", TextTable::fmt(geometric_mean(gmean["stt-base"]), 3),
                 TextTable::fmt(geometric_mean(gmean["C1"]), 3),
                 TextTable::fmt(geometric_mean(gmean["C2"]), 3),
                 TextTable::fmt(geometric_mean(gmean["C3"]), 3)});
  table.print(std::cout);

  const double c1 = geometric_mean(gmean["C1"]);
  const double sb = geometric_mean(gmean["stt-base"]);
  std::cout << "\nstt-base / C1 dynamic ratio: " << TextTable::fmt(sb / c1, 2)
            << "  (paper: ~5x — the two-part cache routes the write working\n"
               " set to cheap low-retention writes)\n";
  return 0;
}
