// Extension analysis (beyond the paper's figures): endurance.
//
// STT-RAM cells wear out with writes; i2WAP (the paper's ref [15], source of
// the Fig. 3 methodology) argues cache lifetime is set by the most-written
// line. The two-part design deliberately concentrates the write working set
// into the small LR part — this bench quantifies the resulting wear: total
// physical writes per part, the hottest line of each, and the LR wear COV.
//
//   ./ext_endurance [scale=0.4]
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "sim/probe.hpp"

int main(int argc, char** argv) {
  using namespace sttgpu;

  const Config cfg = Config::from_args(argc, argv);
  const double scale = cfg.get_double("scale", 0.4);

  std::cout << "Extension: write endurance view of the two-part L2 (C1)\n\n";

  TextTable table({"benchmark", "LR phys writes", "hottest LR line", "LR wear COV",
                   "+leveling: hottest", "+leveling: COV", "rotations"});
  for (const std::string& name : workload::benchmark_names()) {
    const sim::TwoPartProbe p = sim::run_two_part(name, sim::c1_bank_config(), scale);
    sttl2::TwoPartBankConfig leveled = sim::c1_bank_config();
    leveled.lr_wear_leveling = true;
    leveled.wear_level_period = 20000;
    const sim::TwoPartProbe q = sim::run_two_part(name, leveled, scale);
    table.add_row({name, std::to_string(p.counters.get("lr_phys_writes")),
                   std::to_string(p.lr_wear_max_line),
                   TextTable::fmt_percent(p.lr_wear_inter_cov),
                   std::to_string(q.lr_wear_max_line),
                   TextTable::fmt_percent(q.lr_wear_inter_cov),
                   std::to_string(q.counters.get("wear_rotations"))});
  }
  table.print(std::cout);

  std::cout << "\nReading: the LR part takes the write pounding by design (that is\n"
               "what makes the HR part cheap and cold), so its lifetime is set by\n"
               "its hottest line. The optional i2WAP-style rotation (extension)\n"
               "flattens the wear distribution at a modelled flush cost.\n";
  return 0;
}
