// Ablation: warp scheduler policy (GTO vs loose round-robin) across the
// architectures. The paper uses GPGPU-Sim's default scheduling; this checks
// that the two-part cache's advantage is not a scheduling artifact.
//
//   ./abl_scheduler [scale=0.4] [jobs=N]
#include <iostream>
#include <iterator>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/executor.hpp"
#include "sim/runner.hpp"

int main(int argc, char** argv) {
  using namespace sttgpu;

  const Config cfg = Config::from_args(argc, argv);
  const double scale = cfg.get_double("scale", 0.4);
  const unsigned jobs = sim::resolve_jobs(cfg.get_int("jobs", 0));
  const char* benchmarks[] = {"bfs", "kmeans", "lbm", "tpacf", "stencil", "nw"};
  const gpu::SchedulerKind scheds[] = {gpu::SchedulerKind::kGto, gpu::SchedulerKind::kLrr};

  std::cout << "Ablation: warp scheduler policy\n\n";
  TextTable table({"benchmark", "scheduler", "sram IPC", "C1 IPC", "C1 speedup"});

  // One job per (benchmark, scheduler) pair (each runs SRAM and C1); rows
  // and speedups are collected by index so output and the Gmeans are
  // identical for any job count.
  const std::size_t total = std::size(benchmarks) * std::size(scheds);
  std::vector<std::vector<std::string>> rows(total);
  std::vector<double> speedups(total, 0.0);
  std::vector<sim::Job> work;
  std::size_t slot = 0;
  for (const char* name : benchmarks) {
    for (const gpu::SchedulerKind sched : scheds) {
      const char* sched_name = sched == gpu::SchedulerKind::kGto ? "GTO" : "LRR";
      work.push_back(sim::Job{
          std::string(name) + "/" + sched_name, [&, name, sched, sched_name, slot]() {
            sim::ArchSpec sram = sim::make_arch(sim::Architecture::kSramBaseline);
            sim::ArchSpec c1 = sim::make_arch(sim::Architecture::kC1);
            sram.gpu.scheduler = sched;
            c1.gpu.scheduler = sched;
            const workload::Workload w = workload::make_benchmark(name, scale);
            const sim::Metrics m_sram = sim::run_one(sram, w);
            const sim::Metrics m_c1 = sim::run_one(c1, w);
            const double speedup = m_c1.ipc / m_sram.ipc;
            speedups[slot] = speedup;
            rows[slot] = {name, sched_name, TextTable::fmt(m_sram.ipc, 3),
                          TextTable::fmt(m_c1.ipc, 3), TextTable::fmt(speedup, 3)};
          }});
      ++slot;
    }
  }
  sim::run_jobs(std::move(work), jobs);

  std::vector<double> gto_speedups, lrr_speedups;
  for (std::size_t i = 0; i < total; ++i) {
    (i % std::size(scheds) == 0 ? gto_speedups : lrr_speedups).push_back(speedups[i]);
  }
  for (std::vector<std::string>& row : rows) table.add_row(std::move(row));
  table.print(std::cout);
  std::cout << "\nC1 speedup Gmean — GTO: " << TextTable::fmt(geometric_mean(gto_speedups), 3)
            << ", LRR: " << TextTable::fmt(geometric_mean(lrr_speedups), 3)
            << "\nExpected: the two-part cache wins under both schedulers.\n";
  return 0;
}
