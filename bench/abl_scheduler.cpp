// Ablation: warp scheduler policy (GTO vs loose round-robin) across the
// architectures. The paper uses GPGPU-Sim's default scheduling; this checks
// that the two-part cache's advantage is not a scheduling artifact.
//
//   ./abl_scheduler [scale=0.4]
#include <iostream>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/runner.hpp"

int main(int argc, char** argv) {
  using namespace sttgpu;

  const Config cfg = Config::from_args(argc, argv);
  const double scale = cfg.get_double("scale", 0.4);
  const char* benchmarks[] = {"bfs", "kmeans", "lbm", "tpacf", "stencil", "nw"};

  std::cout << "Ablation: warp scheduler policy\n\n";
  TextTable table({"benchmark", "scheduler", "sram IPC", "C1 IPC", "C1 speedup"});
  std::vector<double> gto_speedups, lrr_speedups;

  for (const char* name : benchmarks) {
    for (const auto sched : {gpu::SchedulerKind::kGto, gpu::SchedulerKind::kLrr}) {
      sim::ArchSpec sram = sim::make_arch(sim::Architecture::kSramBaseline);
      sim::ArchSpec c1 = sim::make_arch(sim::Architecture::kC1);
      sram.gpu.scheduler = sched;
      c1.gpu.scheduler = sched;
      const workload::Workload w = workload::make_benchmark(name, scale);
      const sim::Metrics m_sram = sim::run_one(sram, w);
      const sim::Metrics m_c1 = sim::run_one(c1, w);
      const double speedup = m_c1.ipc / m_sram.ipc;
      (sched == gpu::SchedulerKind::kGto ? gto_speedups : lrr_speedups).push_back(speedup);
      table.add_row({name, sched == gpu::SchedulerKind::kGto ? "GTO" : "LRR",
                     TextTable::fmt(m_sram.ipc, 3), TextTable::fmt(m_c1.ipc, 3),
                     TextTable::fmt(speedup, 3)});
    }
  }
  table.print(std::cout);
  std::cout << "\nC1 speedup Gmean — GTO: " << TextTable::fmt(geometric_mean(gto_speedups), 3)
            << ", LRR: " << TextTable::fmt(geometric_mean(lrr_speedups), 3)
            << "\nExpected: the two-part cache wins under both schedulers.\n";
  return 0;
}
