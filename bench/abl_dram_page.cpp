// Ablation: DRAM page policy (closed-page vs open-page row-buffer model).
// The paper's conclusions concern the L2; this checks they survive a more
// detailed memory model.
//
//   ./abl_dram_page [scale=0.4] [jobs=N]
#include <iostream>
#include <iterator>
#include <vector>

#include "common/config.hpp"
#include "common/table.hpp"
#include "sim/executor.hpp"
#include "sim/runner.hpp"

int main(int argc, char** argv) {
  using namespace sttgpu;

  const Config cfg = Config::from_args(argc, argv);
  const double scale = cfg.get_double("scale", 0.4);
  const unsigned jobs = sim::resolve_jobs(cfg.get_int("jobs", 0));
  const char* benchmarks[] = {"lbm", "sad", "bfs", "kmeans"};

  std::cout << "Ablation: DRAM page policy\n\n";
  TextTable table({"benchmark", "page policy", "sram IPC", "C1 IPC", "C1 speedup"});

  // One job per (benchmark, page policy) pair (each runs SRAM and C1); rows
  // are filled by index so the table order is identical for any job count.
  std::vector<std::vector<std::string>> rows(std::size(benchmarks) * 2);
  std::vector<sim::Job> work;
  std::size_t slot = 0;
  for (const char* name : benchmarks) {
    for (const bool open_page : {false, true}) {
      work.push_back(sim::Job{
          std::string(name) + (open_page ? "/open" : "/closed"),
          [&, name, open_page, slot]() {
            sim::ArchSpec sram = sim::make_arch(sim::Architecture::kSramBaseline);
            sim::ArchSpec c1 = sim::make_arch(sim::Architecture::kC1);
            sram.gpu.dram_open_page = open_page;
            c1.gpu.dram_open_page = open_page;
            const workload::Workload w = workload::make_benchmark(name, scale);
            const sim::Metrics m_sram = sim::run_one(sram, w);
            const sim::Metrics m_c1 = sim::run_one(c1, w);
            rows[slot] = {name, open_page ? "open" : "closed",
                          TextTable::fmt(m_sram.ipc, 3), TextTable::fmt(m_c1.ipc, 3),
                          TextTable::fmt(m_c1.ipc / m_sram.ipc, 3)};
          }});
      ++slot;
    }
  }
  sim::run_jobs(std::move(work), jobs);
  for (std::vector<std::string>& row : rows) table.add_row(std::move(row));
  table.print(std::cout);

  std::cout << "\nExpected: open-page speeds streaming workloads at both ends, and\n"
               "the C1-over-SRAM advantage persists under either policy.\n";
  return 0;
}
