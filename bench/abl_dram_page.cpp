// Ablation: DRAM page policy (closed-page vs open-page row-buffer model).
// The paper's conclusions concern the L2; this checks they survive a more
// detailed memory model.
//
//   ./abl_dram_page [scale=0.4]
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "sim/runner.hpp"

int main(int argc, char** argv) {
  using namespace sttgpu;

  const Config cfg = Config::from_args(argc, argv);
  const double scale = cfg.get_double("scale", 0.4);
  const char* benchmarks[] = {"lbm", "sad", "bfs", "kmeans"};

  std::cout << "Ablation: DRAM page policy\n\n";
  TextTable table({"benchmark", "page policy", "sram IPC", "C1 IPC", "C1 speedup"});

  for (const char* name : benchmarks) {
    for (const bool open_page : {false, true}) {
      sim::ArchSpec sram = sim::make_arch(sim::Architecture::kSramBaseline);
      sim::ArchSpec c1 = sim::make_arch(sim::Architecture::kC1);
      sram.gpu.dram_open_page = open_page;
      c1.gpu.dram_open_page = open_page;
      const workload::Workload w = workload::make_benchmark(name, scale);
      const sim::Metrics m_sram = sim::run_one(sram, w);
      const sim::Metrics m_c1 = sim::run_one(c1, w);
      table.add_row({name, open_page ? "open" : "closed", TextTable::fmt(m_sram.ipc, 3),
                     TextTable::fmt(m_c1.ipc, 3),
                     TextTable::fmt(m_c1.ipc / m_sram.ipc, 3)});
    }
  }
  table.print(std::cout);

  std::cout << "\nExpected: open-page speeds streaming workloads at both ends, and\n"
               "the C1-over-SRAM advantage persists under either policy.\n";
  return 0;
}
