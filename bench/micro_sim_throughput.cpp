// Simulator-throughput microbenchmark: simulated cycles per wall-second,
// with the event-driven fast-forward on vs. off.
//
//   ./micro_sim_throughput [scale=1.0] [reps=3] [json=BENCH_sim_throughput.json]
//
// Two workloads bracket the design space:
//   - drain-heavy: a sparse kernel (few warps, random DRAM-missing stream,
//     inflated DRAM latency) whose execution is dominated by long quiescent
//     waits — the case the fast-forward exists for. Expect a large speedup.
//   - busy: the standard C1/bfs benchmark, where some component has work on
//     almost every cycle — measures that the skip scan stays off the
//     critical path (expect ~1.0x, i.e. no regression).
//
// Every (workload, mode) pair is also checked for identical simulated cycle
// counts and instruction counts — the fast-forward must not change results.
// Output: a human-readable table plus a machine-readable JSON file for CI
// trend tracking.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "sim/arch.hpp"
#include "sim/runner.hpp"
#include "workload/benchmarks.hpp"

namespace {

using namespace sttgpu;

/// Few warps + uniform-random misses + slow DRAM: almost every cycle is a
/// quiescent memory wait, the regime the fast-forward targets.
workload::Workload drain_heavy_workload(double scale) {
  workload::KernelSpec k;
  k.name = "drain";
  k.grid_blocks = 4;
  k.threads_per_block = 64;  // 2 warps per block
  k.instructions_per_warp = static_cast<unsigned>(12000 * scale);
  k.mem_fraction = 0.5;
  k.store_fraction = 0.1;
  k.const_fraction = 0.0;
  k.pattern.kind = workload::PatternKind::kRandom;
  k.pattern.footprint_bytes = 256ull << 20;  // misses everywhere
  k.pattern.reuse_fraction = 0.0;
  k.pattern.wws_lines = 0;

  workload::Workload w;
  w.name = "drain-heavy";
  w.region = "synthetic";
  w.kernels.push_back(k);
  return w;
}

struct Sample {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  double wall_s = 0.0;
  double cycles_per_s = 0.0;
};

Sample measure(const sim::ArchSpec& spec, const workload::Workload& w, unsigned reps,
               bool fast_forward, unsigned hotpath = 2) {
  Sample best;
  for (unsigned r = 0; r < reps; ++r) {
    gpu::RunResult run;
    const auto t0 = std::chrono::steady_clock::now();
    (void)sim::run_one_detailed(spec, w, run,
                                {.fast_forward = fast_forward, .hotpath = hotpath});
    const auto t1 = std::chrono::steady_clock::now();
    const double wall = std::chrono::duration<double>(t1 - t0).count();
    if (r == 0 || wall < best.wall_s) {
      best.cycles = run.cycles;
      best.instructions = run.instructions;
      best.wall_s = wall;
      best.cycles_per_s = wall > 0.0 ? static_cast<double>(run.cycles) / wall : 0.0;
    } else {
      STTGPU_REQUIRE(run.cycles == best.cycles,
                     "micro_sim_throughput: nondeterministic cycle count");
    }
  }
  return best;
}

struct Row {
  std::string workload;
  Sample off;
  Sample on;
  double speedup = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const double scale = cfg.get_double("scale", 1.0);
  const unsigned reps = static_cast<unsigned>(cfg.get_int("reps", 3));
  const std::string json_path = cfg.get_string("json", "BENCH_sim_throughput.json");

  struct Case {
    std::string name;
    workload::Workload w;
    sim::ArchSpec spec;
  };
  std::vector<Case> cases;
  {
    Case drain;
    drain.name = "drain-heavy";
    drain.w = drain_heavy_workload(scale);
    drain.spec = sim::make_arch(sim::Architecture::kC1);
    drain.spec.gpu.dram_latency = 2000;  // stretch the quiescent gaps
    cases.push_back(std::move(drain));

    Case busy;
    busy.name = "busy(C1/bfs)";
    busy.w = workload::make_benchmark("bfs", 0.2 * scale);
    busy.spec = sim::make_arch(sim::Architecture::kC1);
    cases.push_back(std::move(busy));
  }

  std::vector<Row> rows;
  for (Case& c : cases) {
    Row row;
    row.workload = c.name;
    row.off = measure(c.spec, c.w, reps, /*fast_forward=*/false);
    row.on = measure(c.spec, c.w, reps, /*fast_forward=*/true);
    STTGPU_REQUIRE(row.on.cycles == row.off.cycles && row.on.instructions == row.off.instructions,
                   "micro_sim_throughput: fastforward changed results on " + c.name);
    row.speedup = row.off.wall_s > 0.0 ? row.off.wall_s / row.on.wall_s : 0.0;
    rows.push_back(row);
  }

  // Hot-path level sweep on the busy kernel: level 0 (plain per-cycle loop)
  // vs level 2 (event wheel), both at ff=0/ff=1 like the main rows. Results
  // must be byte-identical across levels — only wall time may differ. The
  // headline busy row above stays first (CI's floor check keys off it).
  {
    const Case& busy = cases.back();
    const Sample headline = rows.back().off;
    for (const unsigned level : {0u, 1u}) {
      Row row;
      row.workload = "hotpath=" + std::to_string(level) + " busy(C1/bfs)";
      row.off = measure(busy.spec, busy.w, reps, /*fast_forward=*/false, level);
      row.on = measure(busy.spec, busy.w, reps, /*fast_forward=*/true, level);
      STTGPU_REQUIRE(row.off.cycles == headline.cycles &&
                         row.off.instructions == headline.instructions,
                     "micro_sim_throughput: hotpath level changed busy results");
      row.speedup = row.off.wall_s > 0.0 ? row.off.wall_s / row.on.wall_s : 0.0;
      rows.push_back(row);
    }
  }

  std::cout << "Simulator throughput (simulated cycles per wall-second, best of " << reps
            << ")\n\n";
  TextTable table({"workload", "sim cycles", "ff=0 Mcyc/s", "ff=1 Mcyc/s", "speedup"});
  for (const Row& r : rows) {
    table.add_row({r.workload, std::to_string(r.off.cycles),
                   TextTable::fmt(r.off.cycles_per_s * 1e-6, 2),
                   TextTable::fmt(r.on.cycles_per_s * 1e-6, 2),
                   TextTable::fmt(r.speedup, 2)});
  }
  table.print(std::cout);

  std::ofstream out(json_path);
  STTGPU_REQUIRE(static_cast<bool>(out), "cannot open " + json_path);
  JsonWriter w(out);
  w.begin_object();
  w.key("bench").value("sim_throughput");
  w.key("scale").value(scale);
  w.key("reps").value(reps);
  w.key("rows").begin_array();
  for (const Row& r : rows) {
    w.begin_object();
    w.key("workload").value(r.workload);
    w.key("sim_cycles").value(r.off.cycles);
    w.key("ff0_cycles_per_s").value(r.off.cycles_per_s);
    w.key("ff1_cycles_per_s").value(r.on.cycles_per_s);
    w.key("speedup").value(r.speedup);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << "\n";
  std::cout << "\nwrote " << json_path << "\n";
  return 0;
}
