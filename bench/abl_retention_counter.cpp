// Ablation: LR retention-counter width. The paper uses a 4-bit counter per
// LR line (vs 2-bit in HR): a wider counter tracks age more precisely, so
// refresh can be postponed closer to the retention deadline — fewer
// refreshes per line lifetime. Narrow counters refresh earlier and more
// often.
//
//   ./abl_retention_counter [scale=0.4]
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "sim/probe.hpp"

int main(int argc, char** argv) {
  using namespace sttgpu;

  const Config cfg = Config::from_args(argc, argv);
  const double scale = cfg.get_double("scale", 0.4);
  const unsigned bits[] = {2, 3, 4, 6};
  const char* benchmarks[] = {"bfs", "kmeans", "tpacf", "hotspot", "nw"};

  std::cout << "Ablation: LR retention-counter width (C1 geometry)\n\n";
  TextTable table({"benchmark", "bits", "refreshes", "refresh pJ", "forced wb", "IPC"});

  for (const char* name : benchmarks) {
    for (const unsigned b : bits) {
      sttl2::TwoPartBankConfig bank = sim::c1_bank_config();
      bank.lr_counter_bits = b;
      const sim::TwoPartProbe p = sim::run_two_part(name, bank, scale);
      table.add_row({name, std::to_string(b), std::to_string(p.counters.get("refreshes")),
                     "(see fig8b for energy roll-up)",
                     std::to_string(p.counters.get("refresh_forced_wb")),
                     TextTable::fmt(p.metrics.ipc, 3)});
    }
  }
  table.print(std::cout);

  std::cout << "\nExpected: refresh count falls as the counter widens (refresh is\n"
               "postponed to the last counter period, and that period shrinks).\n";
  return 0;
}
