// Microbenchmarks (google-benchmark) of the simulator's hot structures:
// tag probe, LRU victim selection, Zipf sampling, MTJ model math, warp
// instruction generation, COV computation, and a full small GPU run.
#include <benchmark/benchmark.h>

#include "cache/tag_array.hpp"
#include "cache/write_stats.hpp"
#include "common/rng.hpp"
#include "nvm/mtj.hpp"
#include "sim/runner.hpp"
#include "workload/stream.hpp"

namespace {

using namespace sttgpu;

void BM_TagProbe(benchmark::State& state) {
  cache::TagArray tags({64 * 1024, 8, 256}, cache::ReplacementKind::kLru);
  Rng rng(7);
  // Warm: fill half the array.
  for (int i = 0; i < 128; ++i) {
    const Addr a = rng.next_below(1 << 20) * 256;
    tags.fill(a, tags.pick_victim(a), 0);
  }
  for (auto _ : state) {
    const Addr a = rng.next_below(1 << 20) * 256;
    benchmark::DoNotOptimize(tags.probe(a));
  }
}
BENCHMARK(BM_TagProbe);

void BM_LruVictim(benchmark::State& state) {
  cache::LruPolicy lru(256, static_cast<unsigned>(state.range(0)));
  const cache::WayMask valid(static_cast<unsigned>(state.range(0)), true);
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lru.victim(rng.next_below(256), valid.bits()));
  }
}
BENCHMARK(BM_LruVictim)->Arg(2)->Arg(7)->Arg(8)->Arg(128);

void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler zipf(static_cast<std::size_t>(state.range(0)), 0.9);
  Rng rng(13);
  for (auto _ : state) benchmark::DoNotOptimize(zipf.sample(rng));
}
BENCHMARK(BM_ZipfSample)->Arg(64)->Arg(512);

void BM_MtjModel(benchmark::State& state) {
  nvm::MtjModel mtj;
  double delta = 10.0;
  for (auto _ : state) {
    delta = delta >= 40.0 ? 10.0 : delta + 0.1;
    benchmark::DoNotOptimize(mtj.write_pulse_ns(delta));
    benchmark::DoNotOptimize(mtj.write_energy_nj_per_line(delta));
  }
}
BENCHMARK(BM_MtjModel);

void BM_WarpStream(benchmark::State& state) {
  const workload::Workload w = workload::make_benchmark("bfs", 1.0);
  workload::WarpStream stream(w.kernels[0], 3, 1024, 42);
  std::uint64_t n = 0;
  for (auto _ : state) {
    if (stream.done()) {
      state.PauseTiming();
      stream = workload::WarpStream(w.kernels[0], ++n, 1024, 42);
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(stream.next());
  }
}
BENCHMARK(BM_WarpStream);

void BM_WriteVariationCov(benchmark::State& state) {
  cache::WriteVariationTracker tracker(256, 8);
  Rng rng(17);
  for (int i = 0; i < 100000; ++i) {
    tracker.record_write(rng.next_below(256), static_cast<unsigned>(rng.next_below(8)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracker.inter_set_cov());
    benchmark::DoNotOptimize(tracker.intra_set_cov());
  }
}
BENCHMARK(BM_WriteVariationCov);

void BM_FullTinyRun(benchmark::State& state) {
  for (auto _ : state) {
    const sim::Metrics m = sim::run_one(sim::Architecture::kC1, "hotspot", {.scale = 0.05});
    benchmark::DoNotOptimize(m.ipc);
  }
}
BENCHMARK(BM_FullTinyRun)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
