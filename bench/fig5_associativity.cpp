// Regenerates the paper's Figure 5: LR write utilization as a function of
// the LR part's associativity (1/2/4/8/16-way), normalized to a fully-
// associative LR, on the C1 geometry.
//
//   ./fig5_associativity [scale=0.4]
//
// Shape to reproduce: utilization rises with associativity; 2-way captures
// most of the fully-associative utilization (the paper's design choice),
// with a visible 1-way vs 2-way gap for some benchmarks.
#include <iostream>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/probe.hpp"

int main(int argc, char** argv) {
  using namespace sttgpu;

  const Config cfg = Config::from_args(argc, argv);
  const double scale = cfg.get_double("scale", 0.4);
  // 0 means fully associative in TwoPartBankConfig.
  const unsigned assocs[] = {1, 2, 4, 8, 16, 0};

  std::cout << "Figure 5: LR write utilization vs associativity (normalized to fully-"
               "associative), C1 geometry\n\n";

  TextTable table({"benchmark", "1-way", "2-way", "4-way", "8-way", "16-way", "full"});
  std::vector<std::vector<double>> cols(6);

  for (const std::string& name : workload::benchmark_names()) {
    std::vector<double> util(6, 0.0);
    for (std::size_t a = 0; a < 6; ++a) {
      sttl2::TwoPartBankConfig bank = sim::c1_bank_config();
      bank.lr_assoc = assocs[a];
      const sim::TwoPartProbe p = sim::run_two_part(name, bank, scale);
      util[a] = p.lr_write_utilization;
    }
    const double full = util[5] > 0 ? util[5] : 1.0;
    std::vector<std::string> row{name};
    for (std::size_t a = 0; a < 6; ++a) {
      const double norm = util[5] > 0 ? util[a] / full : (a == 5 ? 1.0 : 0.0);
      row.push_back(TextTable::fmt(norm, 3));
      if (util[5] > 0) cols[a].push_back(norm > 0 ? norm : 1e-3);
    }
    table.add_row(std::move(row));
  }

  std::vector<std::string> avg{"Gmean"};
  for (std::size_t a = 0; a < 6; ++a) avg.push_back(TextTable::fmt(geometric_mean(cols[a]), 3));
  table.add_row(std::move(avg));
  table.print(std::cout);

  std::cout << "\nShape check (paper): monotone rise toward full associativity; the\n"
               "2-way point sits close to full => 2-way LR is the chosen design.\n"
               "(Benchmarks with no hot write set show utilization 0 and are\n"
               "reported as 0 across the row.)\n";
  return 0;
}
