// Regenerates the paper's Figure 6: the distribution of rewrite-interval
// times of blocks resident in the LR part (C1 geometry), plus the Section 4
// companion claim that a 40ms HR retention covers >90% of HR rewrites.
//
//   ./fig6_rewrite_interval [scale=0.4]
//
// Shape to reproduce: the bulk of LR rewrites happen within ~10us — the
// justification for the 26.5us LR retention time.
#include <iostream>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/probe.hpp"

int main(int argc, char** argv) {
  using namespace sttgpu;

  const Config cfg = Config::from_args(argc, argv);
  const double scale = cfg.get_double("scale", 0.4);

  std::cout << "Figure 6: rewrite-interval distribution in the LR part (C1)\n\n";

  TextTable table({"benchmark", "<=10us", "<=50us", "<=100us", "<=1ms", "<=2.5ms",
                   ">2.5ms", "intervals"});
  std::vector<std::vector<double>> cols(6);
  TextTable hr_table({"benchmark", "HR rewrites <=40ms", "HR intervals"});
  std::vector<double> hr_cov;

  for (const std::string& name : workload::benchmark_names()) {
    const sim::TwoPartProbe p = sim::run_two_part(name, sim::c1_bank_config(), scale);
    std::vector<std::string> row{name};
    for (std::size_t i = 0; i < 6; ++i) {
      const double f = i < p.lr_interval_fractions.size() ? p.lr_interval_fractions[i] : 0.0;
      row.push_back(TextTable::fmt_percent(f));
      if (p.lr_intervals) cols[i].push_back(f);
    }
    row.push_back(std::to_string(p.lr_intervals));
    table.add_row(std::move(row));

    hr_table.add_row({name, TextTable::fmt_percent(p.hr_within_40ms),
                      std::to_string(p.hr_intervals)});
    if (p.hr_intervals) hr_cov.push_back(p.hr_within_40ms);
  }

  std::vector<std::string> avg{"AVG"};
  for (std::size_t i = 0; i < 6; ++i) {
    StreamStats s;
    for (double v : cols[i]) s.add(v);
    avg.push_back(TextTable::fmt_percent(s.mean()));
  }
  avg.push_back("");
  table.add_row(std::move(avg));
  table.print(std::cout);

  std::cout << "\nSection 4 claim: HR retention of 40ms covers >90% of HR rewrites:\n";
  hr_table.print(std::cout);
  StreamStats hr_avg;
  for (double v : hr_cov) hr_avg.add(v);
  std::cout << "average HR coverage: " << TextTable::fmt_percent(hr_avg.mean()) << "\n";

  std::cout << "\nShape check (paper): most LR rewrites within ~10us; 40ms covers\n"
               ">90% of HR rewrites.\n";
  return 0;
}
