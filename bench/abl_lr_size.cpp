// Ablation: LR-part share of the L2 capacity. The paper fixes LR at 1/8 of
// the total (192KB of 1536KB in C1). This sweep varies the LR share at a
// fixed total capacity and reports LR utilization, migration churn and IPC.
//
//   ./abl_lr_size [scale=0.4] [jobs=N]
#include <iostream>
#include <iterator>
#include <vector>

#include "common/config.hpp"
#include "common/table.hpp"
#include "sim/executor.hpp"
#include "sim/probe.hpp"

int main(int argc, char** argv) {
  using namespace sttgpu;

  const Config cfg = Config::from_args(argc, argv);
  const double scale = cfg.get_double("scale", 0.4);
  const unsigned jobs = sim::resolve_jobs(cfg.get_int("jobs", 0));
  const char* benchmarks[] = {"bfs", "kmeans", "mri-g", "stencil", "nw"};

  // Per-bank splits of the C1 total (256KB/bank), LR kept 2-way.
  const struct Split {
    const char* label;
    std::uint64_t hr_kb, lr_kb;
    unsigned hr_assoc;
  } splits[] = {
      {"1/16", 240, 16, 6},  // 240KB 6-way HR (960 lines) + 16KB LR
      {"1/8 (paper)", 224, 32, 7},
      {"1/4", 192, 64, 6},
      {"1/2", 128, 128, 8},
  };

  std::cout << "Ablation: LR share of a fixed 1536KB two-part L2 (per-bank view)\n\n";
  TextTable table({"benchmark", "LR share", "LR util", "migrations", "lr evictions", "IPC"});

  // One job per (benchmark, split); rows are filled by index so the table
  // order is identical for any job count.
  std::vector<std::vector<std::string>> rows(std::size(benchmarks) * std::size(splits));
  std::vector<sim::Job> work;
  std::size_t slot = 0;
  for (const char* name : benchmarks) {
    for (const Split& s : splits) {
      work.push_back(sim::Job{std::string(name) + "/" + s.label, [&, name, s, slot]() {
                               sttl2::TwoPartBankConfig bank = sim::c1_bank_config();
                               bank.hr_bytes = s.hr_kb * 1024;
                               bank.hr_assoc = s.hr_assoc;
                               bank.lr_bytes = s.lr_kb * 1024;
                               const sim::TwoPartProbe p = sim::run_two_part(name, bank, scale);
                               rows[slot] = {name,
                                             s.label,
                                             TextTable::fmt_percent(p.lr_write_utilization),
                                             std::to_string(p.counters.get("migrations")),
                                             std::to_string(p.counters.get("lr_evictions")),
                                             TextTable::fmt(p.metrics.ipc, 3)};
                             }});
      ++slot;
    }
  }
  sim::run_jobs(std::move(work), jobs);
  for (std::vector<std::string>& row : rows) table.add_row(std::move(row));
  table.print(std::cout);

  std::cout << "\nExpected: a larger LR keeps more of the write working set (less\n"
               "eviction churn) but steals read capacity from HR; 1/8 is a good\n"
               "balance for this suite — the paper's choice.\n";
  return 0;
}
