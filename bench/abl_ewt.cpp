// Ablation (related work, the paper's ref [17]): early write termination.
//
// Zhou et al. (ICCAD'09) abort STT-RAM bit-writes whose target cell already
// holds the value, scaling write energy by the flipped-bit fraction. The
// paper's own design instead avoids expensive writes architecturally; this
// bench shows the two techniques compose: EWT on top of the two-part cache,
// and EWT as an alternative fix for the naive STT baseline.
//
//   ./abl_ewt [scale=0.4] [jobs=N]
#include <iostream>
#include <iterator>
#include <vector>

#include "common/config.hpp"
#include "common/table.hpp"
#include "sim/executor.hpp"
#include "sim/runner.hpp"
#include "sttl2/factories.hpp"

namespace {

using namespace sttgpu;

sim::Metrics run_arch(sim::Architecture arch, const std::string& benchmark, double scale,
                      bool ewt) {
  sim::ArchSpec spec = sim::make_arch(arch);
  if (spec.two_part) {
    spec.two_part_cfg.early_write_termination = ewt;
  } else {
    spec.uniform.early_write_termination = ewt;
  }
  const workload::Workload w = workload::make_benchmark(benchmark, scale);
  return sim::run_one(spec, w);
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = Config::from_args(argc, argv);
  const double scale = cfg.get_double("scale", 0.4);
  const unsigned jobs = sim::resolve_jobs(cfg.get_int("jobs", 0));
  const char* benchmarks[] = {"bfs", "lbm", "histo", "kmeans", "nw"};
  const sim::Architecture archs[] = {sim::Architecture::kSttBaseline,
                                     sim::Architecture::kC1};

  std::cout << "Ablation: early write termination (flip fraction 0.35)\n\n";
  TextTable table({"benchmark", "arch", "dyn W", "dyn W + EWT", "saving"});

  // One job per table row (it runs the plain and the EWT variant); rows are
  // filled by index so the output order is identical for any job count.
  std::vector<std::vector<std::string>> rows(std::size(benchmarks) * std::size(archs));
  std::vector<sim::Job> work;
  std::size_t slot = 0;
  for (const char* name : benchmarks) {
    for (const sim::Architecture arch : archs) {
      work.push_back(sim::Job{
          std::string(sim::to_string(arch)) + "/" + name, [&, name, arch, slot]() {
            const sim::Metrics plain = run_arch(arch, name, scale, false);
            const sim::Metrics ewt = run_arch(arch, name, scale, true);
            rows[slot] = {name, sim::to_string(arch), TextTable::fmt(plain.dynamic_w, 3),
                          TextTable::fmt(ewt.dynamic_w, 3),
                          TextTable::fmt_percent(1.0 - ewt.dynamic_w / plain.dynamic_w)};
          }});
      ++slot;
    }
  }
  sim::run_jobs(std::move(work), jobs);
  for (std::vector<std::string>& row : rows) table.add_row(std::move(row));
  table.print(std::cout);

  std::cout << "\nExpected: EWT saves the most on the write-energy-dominated naive\n"
               "STT baseline; on the two-part cache the architectural fix has\n"
               "already removed most expensive writes, so EWT's margin shrinks.\n";
  return 0;
}
