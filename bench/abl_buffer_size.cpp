// Ablation: swap-buffer capacity (Section 5 sizes the HR<->LR buffers at 10
// lines each and reports a worst-case forced-writeback overhead of ~1%).
// Sweeps the buffer size on write-heavy benchmarks and reports the forced
// writeback share and IPC.
//
//   ./abl_buffer_size [scale=0.4]
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "sim/probe.hpp"

int main(int argc, char** argv) {
  using namespace sttgpu;

  const Config cfg = Config::from_args(argc, argv);
  const double scale = cfg.get_double("scale", 0.4);
  const unsigned sizes[] = {1, 2, 5, 10, 20};
  const char* benchmarks[] = {"bfs", "kmeans", "histo", "mri-g", "backprop"};

  std::cout << "Ablation: swap-buffer capacity (C1 geometry)\n\n";
  TextTable table({"benchmark", "buffer", "forced-wb share", "migr blocked", "IPC"});

  for (const char* name : benchmarks) {
    for (const unsigned lines : sizes) {
      sttl2::TwoPartBankConfig bank = sim::c1_bank_config();
      bank.buffer_lines = lines;
      const sim::TwoPartProbe p = sim::run_two_part(name, bank, scale);
      const double writes = static_cast<double>(p.counters.get("w_demand"));
      const double forced = static_cast<double>(p.counters.get("lr_forced_wb") +
                                                p.counters.get("refresh_forced_wb"));
      table.add_row({name, std::to_string(lines),
                     TextTable::fmt_percent(writes > 0 ? forced / writes : 0.0, 2),
                     std::to_string(p.counters.get("migrations_blocked")),
                     TextTable::fmt(p.metrics.ipc, 3)});
    }
  }
  table.print(std::cout);

  std::cout << "\nShape check (paper): 10-line buffers keep the forced-writeback\n"
               "share around or below ~1% even in the worst case; tiny buffers\n"
               "block migrations and leak performance.\n";
  return 0;
}
