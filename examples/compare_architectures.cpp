// Compare all five Table 2 architectures on one benchmark: the per-workload
// view of the paper's Figure 8 (speedup, dynamic power, total power, all
// normalized to the SRAM baseline).
//
//   ./compare_architectures [benchmark=kmeans] [scale=0.5]
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "sim/runner.hpp"

int main(int argc, char** argv) {
  using namespace sttgpu;

  const Config cfg = Config::from_args(argc, argv);
  const std::string benchmark = cfg.get_string("benchmark", "kmeans");
  const double scale = cfg.get_double("scale", 0.5);

  const workload::Workload probe = workload::make_benchmark(benchmark, scale);
  std::cout << "benchmark " << benchmark << " (region " << probe.region << ", scale "
            << scale << ")\n\n";

  sim::Metrics base;
  TextTable table({"arch", "L2", "regs/SM", "IPC", "speedup", "dyn W", "total W",
                   "dyn(norm)", "total(norm)"});
  for (const auto arch : sim::all_architectures()) {
    const sim::ArchSpec spec = sim::make_arch(arch);
    const workload::Workload w = workload::make_benchmark(benchmark, scale);
    const sim::Metrics m = sim::run_one(spec, w);
    if (arch == sim::Architecture::kSramBaseline) base = m;

    table.add_row({spec.name, std::to_string(spec.l2_total_bytes() / 1024) + "KB",
                   std::to_string(spec.gpu.registers_per_sm), TextTable::fmt(m.ipc, 3),
                   TextTable::fmt(m.ipc / base.ipc, 3), TextTable::fmt(m.dynamic_w, 3),
                   TextTable::fmt(m.total_w, 3), TextTable::fmt(m.dynamic_w / base.dynamic_w, 2),
                   TextTable::fmt(m.total_w / base.total_w, 2)});
  }
  table.print(std::cout);
  return 0;
}
