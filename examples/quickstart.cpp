// Quickstart: simulate one GPGPU benchmark on the SRAM baseline and on the
// paper's C1 two-part STT-RAM L2, and print the headline metrics.
//
//   ./quickstart [benchmark=bfs] [scale=0.3]
//
// This is the 60-second tour of the library: pick an architecture from the
// Table 2 registry, pick a workload model, run, read IPC and L2 power.
#include <iostream>

#include "common/config.hpp"
#include "sim/runner.hpp"

int main(int argc, char** argv) {
  using namespace sttgpu;

  const Config cfg = Config::from_args(argc, argv);
  const std::string benchmark = cfg.get_string("benchmark", "bfs");
  const double scale = cfg.get_double("scale", 0.3);

  std::cout << "benchmark: " << benchmark << " (scale " << scale << ")\n\n";

  for (const auto arch : {sim::Architecture::kSramBaseline, sim::Architecture::kC1}) {
    const sim::ArchSpec spec = sim::make_arch(arch);
    const workload::Workload w = workload::make_benchmark(benchmark, scale);
    const sim::Metrics m = sim::run_one(spec, w);

    std::cout << spec.name << ":  L2 " << spec.l2_total_bytes() / 1024 << "KB"
              << (spec.two_part ? " (two-part LR/HR)" : " (uniform)") << "\n"
              << "  IPC            " << m.ipc << "\n"
              << "  cycles         " << m.cycles << "\n"
              << "  L2 write share " << m.l2_write_share * 100 << "%\n"
              << "  L2 miss rate   " << m.l2_miss_rate * 100 << "%\n"
              << "  L2 power       " << m.total_w << " W (dynamic " << m.dynamic_w
              << " + leakage " << m.leakage_w << ")\n\n";
  }
  return 0;
}
