// Build a custom GPGPU workload model from scratch (without the benchmark
// registry) and run it on a custom two-part L2 — the intended extension
// path for users studying their own kernels.
//
//   ./custom_workload [blocks=150] [store_fraction=0.3] [wws_lines=256]
#include <iostream>

#include "common/config.hpp"
#include "gpu/gpu.hpp"
#include "sttl2/factories.hpp"

int main(int argc, char** argv) {
  using namespace sttgpu;

  const Config cfg = Config::from_args(argc, argv);

  // --- 1. describe the kernel ---
  workload::KernelSpec kernel;
  kernel.name = "my_scatter_update";
  kernel.grid_blocks = static_cast<unsigned>(cfg.get_int("blocks", 150));
  kernel.threads_per_block = 256;
  kernel.regs_per_thread = 32;
  kernel.instructions_per_warp = 800;
  kernel.mem_fraction = 0.35;
  kernel.store_fraction = cfg.get_double("store_fraction", 0.3);
  kernel.pattern.kind = workload::PatternKind::kRandom;
  kernel.pattern.footprint_bytes = 900 << 10;
  kernel.pattern.reuse_fraction = 0.35;
  kernel.pattern.hot_store_fraction = 0.8;
  kernel.pattern.wws_lines = static_cast<std::uint64_t>(cfg.get_int("wws_lines", 256));
  kernel.pattern.zipf_s = 0.9;

  workload::Workload app{.name = "custom", .region = "user", .kernels = {kernel, kernel},
                         .seed = 7};

  // --- 2. describe the L2 bank (a C1-like two-part split) ---
  sttl2::TwoPartBankConfig bank;
  bank.hr_bytes = 224 << 10;
  bank.lr_bytes = 32 << 10;

  // --- 3. run ---
  gpu::GpuConfig gpu_cfg;
  sttl2::TwoPartBankFactory factory(bank, gpu_cfg.clock());
  gpu::Gpu gpu(gpu_cfg, factory);
  const gpu::RunResult r = gpu.run(app);

  std::cout << "custom workload: " << app.total_instructions() << " warp instructions\n"
            << "  cycles            " << r.cycles << "\n"
            << "  IPC               " << r.ipc << "\n"
            << "  L2 accesses       " << r.l2.accesses() << " (" << r.l2.write_share() * 100
            << "% writes, " << r.l2.miss_rate() * 100 << "% misses)\n"
            << "  demand stores     " << r.l2_counters.get("w_demand") << "\n"
            << "  served in LR      " << r.l2_counters.get("w_lr") << " ("
            << r.l2_counters.get("migrations") << " migrations)\n"
            << "  served in HR      " << r.l2_counters.get("w_hr") << "\n"
            << "  LR refreshes      " << r.l2_counters.get("refreshes") << "\n"
            << "  forced writebacks " << r.l2_counters.get("lr_forced_wb") +
                                             r.l2_counters.get("refresh_forced_wb")
            << "\n"
            << "  L2 dynamic energy " << r.l2_energy.total_pj() * 1e-6 << " uJ\n";

  std::cout << "\nEnergy by category (pJ):\n";
  for (const auto& [category, pj] : r.l2_energy.categories()) {
    std::cout << "  " << category << ": " << pj << "\n";
  }
  return 0;
}
