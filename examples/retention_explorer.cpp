// Explore the STT-RAM retention/write-cost trade-off (the paper's Table 1
// lever) and its system-level effect: sweep the LR part's retention time
// and report device parameters, refresh pressure and performance.
//
//   ./retention_explorer [benchmark=kmeans] [scale=0.3]
#include <iostream>

#include "common/config.hpp"
#include "common/table.hpp"
#include "nvm/cell.hpp"
#include "sim/probe.hpp"

int main(int argc, char** argv) {
  using namespace sttgpu;

  const Config cfg = Config::from_args(argc, argv);
  const std::string benchmark = cfg.get_string("benchmark", "kmeans");
  const double scale = cfg.get_double("scale", 0.3);

  std::cout << "Device view: retention vs write cost (MtjModel)\n\n";
  TextTable dev({"retention", "delta", "write ns", "write nJ/line", "refresh period"});
  const double retentions[] = {5e-6, 26.5e-6, 100e-6, 1e-3, 40e-3};
  const char* labels[] = {"5us", "26.5us (paper LR)", "100us", "1ms", "40ms (paper HR)"};
  nvm::MtjModel mtj;
  for (std::size_t i = 0; i < 5; ++i) {
    const double delta = mtj.delta_for_retention(retentions[i]);
    dev.add_row({labels[i], TextTable::fmt(delta, 2),
                 TextTable::fmt(mtj.write_pulse_ns(delta), 2),
                 TextTable::fmt(mtj.write_energy_nj_per_line(delta), 3),
                 labels[i]});
  }
  dev.print(std::cout);

  std::cout << "\nSystem view: LR retention sweep on " << benchmark << " (C1 geometry)\n\n";
  TextTable sys({"LR retention", "IPC", "refreshes", "forced wb", "LR util", "dyn W"});
  for (std::size_t i = 0; i < 4; ++i) {  // 40ms would equal HR: skip
    sttl2::TwoPartBankConfig bank = sim::c1_bank_config();
    bank.lr_retention_s = retentions[i];
    const sim::TwoPartProbe p = sim::run_two_part(benchmark, bank, scale);
    sys.add_row({labels[i], TextTable::fmt(p.metrics.ipc, 3),
                 std::to_string(p.counters.get("refreshes")),
                 std::to_string(p.counters.get("refresh_forced_wb")),
                 TextTable::fmt_percent(p.lr_write_utilization),
                 TextTable::fmt(p.metrics.dynamic_w, 3)});
  }
  sys.print(std::cout);

  std::cout << "\nReading: shorter retention = cheaper writes but more refresh\n"
               "traffic; the paper picks 26.5us because the write working set is\n"
               "rewritten faster than it expires (Fig. 6), making refresh rare.\n";
  return 0;
}
